// Sharded, partially-replicated clusters (docs/SHARDING.md).
//
// Three layers of coverage:
//  * ShardMap / ShardRouter units: arithmetic placement honors the
//    Appendix A invariants (every server stores something, no server
//    stores everything) and the router's join bookkeeping matches the
//    per-protocol awaiting-sets it absorbed.
//  * Regime isolation: the default (num_shards == 1) configuration emits
//    no shard key in trace headers and its artifacts replay exactly as
//    before; sharded headers round-trip and rebuild the same ShardMap.
//  * End to end: every registry protocol runs cross-shard transactions at
//    shards > servers, holds its claimed consistency level, passes the
//    Table-1 audit at 64 shards, survives a chaos smoke, and — through the
//    real-threads backend — still agrees with the simulator oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "chaos/chaos.h"
#include "consistency/checkers.h"
#include "impossibility/auditor.h"
#include "impossibility/progress.h"
#include "obs/trace_io.h"
#include "proto/common/client.h"
#include "proto/common/shard.h"
#include "proto/registry.h"
#include "rt/runtime.h"
#include "util/check.h"
#include "workload/workload.h"

namespace discs {
namespace {

using cons::Verdict;
using proto::ClusterConfig;
using proto::ShardMap;
using proto::ShardRouter;

std::vector<ProcessId> servers(std::size_t m, std::uint64_t first = 0) {
  std::vector<ProcessId> out;
  for (std::size_t i = 0; i < m; ++i) out.push_back(ProcessId(first + i));
  return out;
}

bool is_strawman(const std::string& name) {
  return name == "naivefast" || name == "stubborn";
}

/// The claimed-level checker dispatch the rt tests use, shared here for the
/// sharded sweeps.
cons::CheckResult check_claim(const proto::Protocol& protocol,
                              const hist::History& history) {
  const std::string claim = protocol.consistency_claim();
  if (claim.find("strict") != std::string::npos)
    return cons::check_strict_serializability(history);
  if (claim.find("read-atomic") != std::string::npos)
    return cons::check_read_atomicity(history);
  return cons::check_causal_consistency(history);
}

// --- ShardMap units ----------------------------------------------------------

TEST(ShardMap, PlacementHonorsAppendixAInvariants) {
  const auto srv = servers(4);
  ShardMap map = ShardMap::make(/*num_shards=*/8, /*replicas=*/2, srv,
                                /*num_objects=*/32);
  ASSERT_TRUE(map.enabled());
  EXPECT_EQ(map.str(), "8x2/m4");

  // Key routing is residue arithmetic; the replica group is R consecutive
  // servers from shard mod m, primary first.
  EXPECT_EQ(map.shard_of(ObjectId(13)), 5u);
  EXPECT_EQ(map.primary_of(5), srv[1]);
  EXPECT_EQ(map.replicas_of(ObjectId(13)),
            (std::vector<ProcessId>{srv[1], srv[2]}));

  // Every server stores a non-empty, strict subset of the objects.
  for (auto s : srv) {
    auto objs = map.objects_at(s);
    EXPECT_FALSE(objs.empty());
    EXPECT_LT(objs.size(), map.num_objects());
    EXPECT_TRUE(std::is_sorted(objs.begin(), objs.end()));
    for (auto obj : objs) EXPECT_TRUE(map.server_stores(s, obj));
  }

  // Coverage: each object is stored by exactly R servers, and the three
  // placement views (replicas_of, server_stores, objects_at) agree.
  std::map<std::uint64_t, std::set<std::uint64_t>> holders;
  for (auto s : srv)
    for (auto obj : map.objects_at(s)) holders[obj.value()].insert(s.value());
  for (std::size_t o = 0; o < map.num_objects(); ++o) {
    ObjectId obj(o);
    ASSERT_EQ(holders[o].size(), map.replicas());
    for (auto s : map.replicas_of(obj)) {
      EXPECT_TRUE(holders[o].count(s.value()));
      EXPECT_TRUE(map.server_stores(s, obj));
    }
  }
}

TEST(ShardMap, RejectsDegenerateConfigurations) {
  const auto srv = servers(4);
  // Fewer shards than servers: some server would store nothing.
  EXPECT_THROW(ShardMap::make(3, 1, srv, 16), CheckFailure);
  // Full replication: some (every) server would store everything.
  EXPECT_THROW(ShardMap::make(8, 4, srv, 16), CheckFailure);
  EXPECT_THROW(ShardMap::make(8, 0, srv, 16), CheckFailure);
  // Fewer keys than shards: an empty shard stores nothing anywhere.
  EXPECT_THROW(ShardMap::make(8, 1, srv, 7), CheckFailure);
  // One server is below the model's m >= 2.
  EXPECT_THROW(ShardMap::make(2, 1, servers(1), 4), CheckFailure);
}

TEST(ShardMap, MillionKeyPlacementStaysCheap) {
  // The point of computed placement: per-server enumeration is O(stored),
  // so a million-key map costs milliseconds and no per-key metadata.
  const std::size_t kKeys = 1'000'000;
  const auto srv = servers(8);
  ShardMap map = ShardMap::make(64, 2, srv, kKeys);
  std::size_t total = 0;
  for (auto s : srv) {
    auto objs = map.objects_at(s);
    EXPECT_TRUE(std::is_sorted(objs.begin(), objs.end()));
    total += objs.size();
    for (std::size_t i = 0; i < objs.size(); i += 997)
      EXPECT_TRUE(map.server_stores(s, objs[i]));
  }
  // Every key twice (R = 2), split across the 8 servers.
  EXPECT_EQ(total, 2 * kKeys);
  EXPECT_FALSE(map.server_stores(srv[0], ObjectId(1)));  // shard 1 -> s1,s2
}

TEST(ShardRouter, JoinBookkeepingMatchesTheAwaitingSetsItReplaced) {
  ShardRouter router;
  EXPECT_TRUE(router.joined());
  router.expect(ProcessId(3));
  router.expect(ProcessId(1));
  router.expect(ProcessId(3));  // idempotent, as set insertion was
  EXPECT_FALSE(router.joined());
  EXPECT_EQ(router.pending(), 2u);
  // Digest surface: sorted raw ids, exactly as the old std::set rendered.
  EXPECT_EQ(*router.awaiting().begin(), 1u);
  EXPECT_FALSE(router.ack(ProcessId(3)));
  EXPECT_FALSE(router.ack(ProcessId(7)));  // unknown ack changes nothing
  EXPECT_TRUE(router.ack(ProcessId(1)));
  EXPECT_TRUE(router.joined());
  router.expect(ProcessId(9));
  router.reset();
  EXPECT_TRUE(router.joined());
}

// --- trace headers: the knob is invisible until used -------------------------

TEST(ShardedTrace, DefaultHeaderOmitsShardKey) {
  auto protocol = proto::protocol_by_name("cops");
  ClusterConfig cfg;
  obs::TraceDoc doc = obs::capture_scenario(*protocol, "quickread", cfg);
  std::string bytes = obs::export_jsonl(doc);
  EXPECT_EQ(bytes.find("\"shards\""), std::string::npos);
  EXPECT_EQ(obs::import_jsonl(bytes).cluster.num_shards, 1u);
}

TEST(ShardedTrace, ShardedHeaderRoundTripsAndReplaysByteExactly) {
  ClusterConfig cfg;
  cfg.num_servers = 4;
  cfg.num_objects = 16;
  cfg.num_shards = 8;
  cfg.replication = 2;
  for (const auto& protocol : proto::all_protocols()) {
    SCOPED_TRACE(protocol->name());
    obs::TraceDoc doc = obs::capture_scenario(*protocol, "mixed", cfg);
    std::string bytes = obs::export_jsonl(doc);
    EXPECT_NE(bytes.find("\"shards\""), std::string::npos);

    // Import rebuilds the same topology; replay rebuilds the same ShardMap
    // and lands byte-for-byte on the captured artifact.
    obs::TraceDoc imported = obs::import_jsonl(bytes);
    EXPECT_EQ(imported.cluster.num_shards, 8u);
    EXPECT_EQ(imported.cluster.replication, 2u);
    obs::DocReplay replay = obs::replay_doc(imported);
    ASSERT_TRUE(replay.ok) << replay.error;
    EXPECT_TRUE(replay.digest_match);
    EXPECT_EQ(obs::export_jsonl(replay.reexport), bytes);
  }
}

// --- cross-shard transactions, whole registry --------------------------------

TEST(ShardedWorkload, EveryProtocolHoldsItsClaimAtEightShards) {
  ClusterConfig ccfg;
  ccfg.num_servers = 4;
  ccfg.num_clients = 4;
  ccfg.num_objects = 16;
  ccfg.num_shards = 8;
  ccfg.replication = 2;
  wl::WorkloadConfig wcfg;
  wcfg.num_txs = 40;
  wcfg.read_objects = 3;  // read sets straddle shard groups
  wcfg.write_fraction = 0.4;
  wcfg.seed = 17;
  for (const auto& protocol : proto::all_protocols()) {
    SCOPED_TRACE(protocol->name());
    sim::Simulation sim;
    proto::IdSource ids;
    proto::Cluster cluster = protocol->build(sim, ccfg, ids);
    auto result = wl::run_workload_concurrent(sim, *protocol, cluster, ids,
                                              wcfg);
    EXPECT_EQ(result.incomplete, 0u);
    EXPECT_NE(cons::check_reads_valid(result.history).verdict,
              Verdict::kViolation);
    if (is_strawman(protocol->name())) continue;  // violating is their point
    auto claimed = check_claim(*protocol, result.history);
    EXPECT_NE(claimed.verdict, Verdict::kViolation)
        << (claimed.violations.empty() ? ""
                                       : claimed.violations.front().detail);
  }
}

TEST(ShardedAudit, TableOneHoldsAtSixtyFourShards) {
  // The acceptance bar: the general (sharded, partially replicated)
  // topology must not change any protocol's Table-1 position — the same
  // bounds test_auditor pins on the 2-server cluster hold at 64 shards.
  struct Expected {
    const char* name;
    std::size_t r;
    std::size_t v;
    bool n;
  };
  const Expected expected[] = {
      {"cops", 2, 2, true},      {"gentlerain", 2, 1, false},
      {"cops-snow", 1, 1, true}, {"ramp", 2, 2, true},
      {"eiger", 3, 2, true},     {"wren", 2, 1, true},
      {"spanner", 1, 1, false},
  };
  imposs::AuditConfig cfg;
  cfg.cluster.num_servers = 4;
  cfg.cluster.num_clients = 4;
  cfg.cluster.num_objects = 64;
  cfg.cluster.num_shards = 64;
  cfg.cluster.replication = 2;
  cfg.workload_txs = 24;
  cfg.stress_seeds = 2;
  cfg.run_induction = false;
  for (const auto& e : expected) {
    auto protocol = proto::protocol_by_name(e.name);
    auto audit = imposs::audit_protocol(*protocol, cfg);
    EXPECT_LE(audit.max_rounds, e.r) << e.name << ": " << audit.row_str();
    EXPECT_LE(audit.max_values_per_object, e.v)
        << e.name << ": " << audit.row_str();
    EXPECT_EQ(audit.nonblocking, e.n) << e.name << ": " << audit.row_str();
    if (e.name != std::string("ramp")) {
      EXPECT_EQ(audit.causal_verdict, Verdict::kOk)
          << e.name << ": " << audit.causal_detail;
    }
  }
}

// --- fault machinery in the sharded regime ------------------------------------

TEST(ShardedFaults, ProgressAuditAndChaosSmoke) {
  ClusterConfig cluster;
  cluster.num_servers = 4;
  cluster.num_clients = 4;
  cluster.num_objects = 16;
  cluster.num_shards = 8;
  cluster.replication = 2;

  // Fault-free progress: a cross-shard write becomes visible to a fresh
  // reader, exactly as on the flat cluster.
  imposs::ProgressOptions popts;
  popts.cluster = cluster;
  fault::FaultPlan empty;
  auto report =
      imposs::audit_progress(*proto::protocol_by_name("cops"), empty, popts);
  EXPECT_TRUE(report.progress()) << report.detail;

  // Chaos campaign inside the fairness envelope: randomized faults over the
  // sharded cluster must not produce safety or liveness counterexamples.
  chaos::CampaignConfig ccfg;
  ccfg.cluster = cluster;
  ccfg.workload.num_txs = 16;
  ccfg.workload.seed = 3;
  ccfg.runs = 2;
  ccfg.seed = 5;
  auto result =
      chaos::run_campaign(*proto::protocol_by_name("cops-snow"), ccfg);
  EXPECT_EQ(result.runs, 2u);
  EXPECT_TRUE(result.counterexamples.empty())
      << result.counterexamples.front().detail;
}

// --- real-threads backend ------------------------------------------------------

TEST(ShardedRt, OracleAgreementHoldsAtEightShards) {
  proto::ClusterConfig ccfg;
  ccfg.num_servers = 4;
  ccfg.num_clients = 3;
  ccfg.num_objects = 16;
  ccfg.num_shards = 8;
  ccfg.replication = 2;
  wl::WorkloadConfig wcfg;
  wcfg.num_txs = 15;
  wcfg.write_fraction = 0.3;
  wcfg.read_objects = 3;
  wcfg.seed = 11;
  rt::Options opts;
  opts.workers = 2;
  for (const auto& protocol : proto::all_protocols()) {
    SCOPED_TRACE(protocol->name());
    rt::RunReport rep = rt::run(*protocol, ccfg, wcfg, opts);
    ASSERT_FALSE(rep.timed_out);
    EXPECT_EQ(rep.txs_incomplete, 0u);
    // The concurrently captured sharded run replays byte-for-byte on the
    // single-threaded simulator, shard routing included.
    obs::DocReplay replay = obs::replay_doc(rep.doc, *protocol);
    ASSERT_TRUE(replay.ok) << replay.error;
    EXPECT_TRUE(replay.digest_match);
    EXPECT_EQ(obs::export_jsonl(replay.reexport), obs::export_jsonl(rep.doc));
  }
}

}  // namespace
}  // namespace discs
