#include <gtest/gtest.h>

#include "proto/registry.h"
#include "workload/workload.h"

namespace discs::wl {
namespace {

using proto::Cluster;
using proto::ClusterConfig;
using proto::IdSource;

struct Fixture : ::testing::Test {
  std::unique_ptr<proto::Protocol> protocol =
      proto::protocol_by_name("naivefast");
  sim::Simulation sim;
  IdSource ids;
  Cluster cluster;
  void SetUp() override {
    ClusterConfig cfg;
    cfg.num_servers = 2;
    cfg.num_clients = 4;
    cfg.num_objects = 6;
    cluster = protocol->build(sim, cfg, ids);
  }
};

TEST_F(Fixture, NextTxRespectsMix) {
  WorkloadConfig cfg;
  cfg.write_fraction = 0.0;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    auto t = next_tx(ids, cluster, cfg, true, rng, nullptr);
    EXPECT_TRUE(t.read_only());
    EXPECT_LE(t.read_set.size(), cfg.read_objects);
    EXPECT_FALSE(t.read_set.empty());
  }
  cfg.write_fraction = 1.0;
  cfg.multi_write_fraction = 1.0;
  for (int i = 0; i < 50; ++i) {
    auto t = next_tx(ids, cluster, cfg, true, rng, nullptr);
    EXPECT_TRUE(t.write_only());
    EXPECT_EQ(t.write_set.size(), cfg.write_objects);
  }
}

TEST_F(Fixture, NextTxHonorsSingleWriteRestriction) {
  WorkloadConfig cfg;
  cfg.write_fraction = 1.0;
  cfg.multi_write_fraction = 1.0;
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    auto t = next_tx(ids, cluster, cfg, /*allow_multi_write=*/false, rng,
                     nullptr);
    EXPECT_EQ(t.write_set.size(), 1u);
  }
}

TEST_F(Fixture, NextTxObjectsAreDistinctAndSorted) {
  WorkloadConfig cfg;
  cfg.read_objects = 4;
  cfg.write_fraction = 0.0;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    auto t = next_tx(ids, cluster, cfg, true, rng, nullptr);
    for (std::size_t j = 1; j < t.read_set.size(); ++j)
      EXPECT_LT(t.read_set[j - 1], t.read_set[j]);
  }
}

TEST_F(Fixture, SequentialWorkloadCompletesAndRecordsWindows) {
  WorkloadConfig cfg;
  cfg.num_txs = 25;
  cfg.seed = 4;
  auto result = run_workload_sequential(sim, *protocol, cluster, ids, cfg);
  EXPECT_EQ(result.windows.size(), 25u);
  EXPECT_EQ(result.incomplete, 0u);
  for (const auto& w : result.windows) {
    EXPECT_TRUE(w.completed);
    EXPECT_LT(w.trace_begin, w.trace_end);
  }
  EXPECT_EQ(result.history.size(), 25u);
}

TEST_F(Fixture, ConcurrentWorkloadCompletes) {
  WorkloadConfig cfg;
  cfg.num_txs = 25;
  cfg.seed = 5;
  auto result = run_workload_concurrent(sim, *protocol, cluster, ids, cfg);
  EXPECT_EQ(result.windows.size(), 25u);
  EXPECT_EQ(result.incomplete, 0u);
}

TEST_F(Fixture, WorkloadIsDeterministicPerSeed) {
  WorkloadConfig cfg;
  cfg.num_txs = 15;
  cfg.seed = 6;

  auto run_once = [&] {
    std::unique_ptr<proto::Protocol> p = proto::protocol_by_name("naivefast");
    sim::Simulation s;
    IdSource local_ids;
    ClusterConfig ccfg;
    ccfg.num_servers = 2;
    ccfg.num_clients = 4;
    ccfg.num_objects = 6;
    Cluster c = p->build(s, ccfg, local_ids);
    run_workload_concurrent(s, *p, c, local_ids, cfg);
    return s.digest();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(Fixture, ZipfWorkloadSkewsObjects) {
  WorkloadConfig cfg;
  cfg.zipf_theta = 0.99;
  cfg.write_fraction = 1.0;
  cfg.multi_write_fraction = 0.0;
  Rng rng(7);
  Zipf zipf(cluster.view.objects.size(), cfg.zipf_theta);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 400; ++i) {
    auto t = next_tx(ids, cluster, cfg, true, rng, &zipf);
    ++counts[t.write_set[0].first.value()];
  }
  // The hottest object should dominate the coldest.
  int hottest = 0, coldest = 1 << 30;
  for (const auto& [obj, n] : counts) {
    hottest = std::max(hottest, n);
    coldest = std::min(coldest, n);
  }
  EXPECT_GT(hottest, 3 * std::max(coldest, 1));
}

}  // namespace
}  // namespace discs::wl
