// The causal span profiler: histogram bucket math, registry integration,
// SpanDag latency attribution on a hand-authored fixture, and the
// acceptance pin — the offline Table-1 profile re-derived from a
// span-annotated artifact matches what imposs::audit_rot measured live,
// for every registry protocol.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>

#include "impossibility/properties.h"
#include "obs/histogram.h"
#include "obs/registry.h"
#include "obs/span_dag.h"
#include "obs/trace_io.h"
#include "proto/registry.h"
#include "util/check.h"
#include "workload/workload.h"

namespace discs {
namespace {

using obs::Histogram;
using obs::SegmentKind;
using obs::SpanDag;

// --- Histogram -------------------------------------------------------------

TEST(Histogram, EmptyIsInert) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_TRUE(std::isnan(h.mean()));
  EXPECT_TRUE(std::isnan(h.p50()));
  EXPECT_TRUE(std::isnan(h.percentile(1.0)));
}

TEST(Histogram, SingleSmallSampleIsExact) {
  // Values below 2^kSubBits land in width-1 buckets, so percentiles are
  // exact, not bucket-representative.
  Histogram h;
  h.record(7);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 7u);
  EXPECT_EQ(h.min(), 7u);
  EXPECT_EQ(h.max(), 7u);
  EXPECT_DOUBLE_EQ(h.mean(), 7.0);
  EXPECT_DOUBLE_EQ(h.p50(), 7.0);
  EXPECT_DOUBLE_EQ(h.p99(), 7.0);
}

TEST(Histogram, ExtremesDoNotOverflow) {
  Histogram h;
  h.record(0);
  h.record(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), std::numeric_limits<std::uint64_t>::max());
  // Percentiles stay clamped into [min, max] even at the top bucket.
  EXPECT_GE(h.percentile(1.0), h.percentile(0.0));
  EXPECT_LE(h.percentile(1.0), static_cast<double>(h.max()));
}

TEST(Histogram, PercentilesAreMonotoneInQ) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v * 13);
  double prev = h.percentile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    double cur = h.percentile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
  EXPECT_GE(h.p50(), static_cast<double>(h.min()));
  EXPECT_LE(h.p99(), static_cast<double>(h.max()));
}

TEST(Histogram, MergeIsSampleUnion) {
  Histogram a, b;
  for (std::uint64_t v = 0; v < 100; ++v) a.record(v);
  for (std::uint64_t v = 1000; v < 1100; ++v) b.record(v);
  Histogram merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count(), a.count() + b.count());
  EXPECT_EQ(merged.sum(), a.sum() + b.sum());
  EXPECT_EQ(merged.min(), a.min());
  EXPECT_EQ(merged.max(), b.max());
  // Half the mass is below 100: the lower quartile comes from a's range,
  // the upper quartile from b's.
  EXPECT_LE(merged.percentile(0.25), 100.0);
  EXPECT_GE(merged.percentile(0.75), 1000.0);
}

TEST(Histogram, BucketMappingBracketsEveryValue) {
  std::size_t prev_index = 0;
  for (std::uint64_t v :
       {std::uint64_t(0), std::uint64_t(1), std::uint64_t(31),
        std::uint64_t(32), std::uint64_t(33), std::uint64_t(1000),
        std::uint64_t(1) << 40,
        std::numeric_limits<std::uint64_t>::max()}) {
    std::size_t idx = Histogram::bucket_index(v);
    EXPECT_GE(idx, prev_index) << "v=" << v;
    prev_index = idx;
    std::uint64_t low = Histogram::bucket_low(idx);
    std::uint64_t width = Histogram::bucket_width(idx);
    EXPECT_LE(low, v);
    EXPECT_GE(width, 1u);
    if (v - low >= width) {
      ADD_FAILURE() << "v=" << v << " outside bucket [" << low << ", " << low
                    << "+" << width << ")";
    }
  }
}

TEST(Registry, HistogramNodesSurviveResetAndAbsorb) {
  obs::Registry reg;
  EXPECT_EQ(reg.find_histogram("lat"), nullptr);
  Histogram& h = reg.histogram("lat");
  h.record(5);
  h.record(500);
  EXPECT_EQ(reg.find_histogram("lat"), &h);
  reg.reset();
  EXPECT_EQ(h.count(), 0u);  // emptied, but the reference stays valid
  h.record(9);

  obs::Registry other;
  other.histogram("lat").record(90);
  other.histogram("other").record(1);
  reg.absorb(other);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), 90u);
  ASSERT_NE(reg.find_histogram("other"), nullptr);
  EXPECT_EQ(reg.find_histogram("other")->count(), 1u);
}

// --- SpanDag on the hand-authored fixture ----------------------------------
//
// tests/data/span_fixture.jsonl encodes one ROT (tx 7, client 2, objects
// 0+1 across servers 0+1).  Server 0 answers in its consuming step; server
// 1 consumes at seq 4 and replies at seq 5 (a deferred, blocking reply).
// The late reply chain (through server 1) is the critical path.

std::string fixture_path() {
  return std::string(DISCS_TEST_DATA_DIR) + "/span_fixture.jsonl";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(SpanFixture, ImportExportIsByteExact) {
  std::string bytes = slurp(fixture_path());
  obs::TraceDoc doc = obs::import_jsonl(bytes);
  EXPECT_EQ(obs::export_jsonl(doc), bytes);
}

TEST(SpanFixture, ProfileRederivesTableOneMetrics) {
  std::string bytes = slurp(fixture_path());
  obs::TraceDoc doc = obs::import_jsonl(bytes);
  SpanDag dag(doc);

  auto rots = dag.completed_rots();
  ASSERT_EQ(rots.size(), 1u);
  EXPECT_EQ(rots[0].id, TxId(7));
  EXPECT_EQ(rots[0].client, ProcessId(2));

  obs::RotProfile p = dag.profile(TxId(7));
  EXPECT_EQ(p.rounds, 1u);
  EXPECT_TRUE(p.one_round);
  EXPECT_FALSE(p.nonblocking);  // server 1 deferred its reply
  EXPECT_EQ(p.deferred_replies, 1u);
  EXPECT_EQ(p.max_values_per_message, 1u);
  EXPECT_EQ(p.max_values_per_object, 1u);
  EXPECT_FALSE(p.leaked_foreign_values);
  EXPECT_TRUE(p.single_server_per_object);
  EXPECT_TRUE(p.one_value);
  EXPECT_EQ(p.reply_bytes, 84u);  // 40 + 44
}

TEST(SpanFixture, CriticalPathFollowsTheLateReply) {
  std::string bytes = slurp(fixture_path());
  obs::TraceDoc doc = obs::import_jsonl(bytes);
  SpanDag dag(doc);

  obs::CriticalPath cp = dag.critical_path(TxId(7));
  EXPECT_EQ(cp.begin, 0u);
  EXPECT_EQ(cp.end, 8u);
  EXPECT_EQ(cp.latency(), 8u);

  std::vector<obs::Segment> expected{
      {SegmentKind::kNetRequest, 0, 3, ProcessId(1)},
      {SegmentKind::kServerQueue, 3, 4, ProcessId(1)},
      {SegmentKind::kServerService, 4, 5, ProcessId(1)},
      {SegmentKind::kNetReply, 5, 7, ProcessId(1)},
      {SegmentKind::kClientFinish, 7, 8, ProcessId(2)},
  };
  EXPECT_EQ(cp.segments, expected);

  // Segments tile [begin, end): adjacent endpoints meet and lengths sum to
  // the end-to-end latency.
  ASSERT_FALSE(cp.segments.empty());
  EXPECT_EQ(cp.segments.front().from, cp.begin);
  EXPECT_EQ(cp.segments.back().to, cp.end);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < cp.segments.size(); ++i) {
    if (i > 0) EXPECT_EQ(cp.segments[i].from, cp.segments[i - 1].to);
    sum += cp.segments[i].length();
  }
  EXPECT_EQ(sum, cp.latency());
}

TEST(SpanDagErrors, RejectsSpanFreeDocuments) {
  auto protocol = proto::protocol_by_name("cops");
  obs::TraceDoc doc =
      obs::capture_scenario(*protocol, "quickread", proto::ClusterConfig{});
  EXPECT_THROW(SpanDag dag(doc), CheckFailure);
}

// --- opt-in byte discipline ------------------------------------------------

TEST(SpanExport, SpanFreeArtifactsCarryNoSpanBytes) {
  auto protocol = proto::protocol_by_name("cops");
  obs::TraceDoc doc =
      obs::capture_scenario(*protocol, "quickread", proto::ClusterConfig{});
  std::string bytes = obs::export_jsonl(doc);
  EXPECT_EQ(bytes.find("record_spans"), std::string::npos);
  EXPECT_EQ(bytes.find("\"record\":\"span\""), std::string::npos);
  EXPECT_EQ(bytes.find("rotreq"), std::string::npos);
  EXPECT_EQ(bytes.find("rotrep"), std::string::npos);
}

TEST(SpanExport, SpanCarryingArtifactsReplayByteExactly) {
  auto protocol = proto::protocol_by_name("cops");
  proto::ClusterConfig cfg;
  cfg.record_spans = true;
  obs::TraceDoc doc = obs::capture_scenario(*protocol, "quickread", cfg);
  EXPECT_FALSE(doc.spans.empty());

  obs::DocReplay replay = obs::replay_doc(doc, *protocol);
  ASSERT_TRUE(replay.ok) << replay.error;
  // Replay regenerated the identical span notes and cause annotations.
  EXPECT_EQ(obs::export_jsonl(replay.reexport), obs::export_jsonl(doc));
}

TEST(SpanExport, WorkloadCaptureEmbedsReplayableInvokes) {
  auto protocol = proto::protocol_by_name("ramp");
  obs::WorkloadCaptureOptions options;
  options.cluster.num_servers = 3;
  options.cluster.num_clients = 4;
  options.cluster.num_objects = 6;
  options.cluster.record_spans = true;
  options.workload.num_txs = 12;
  options.workload.read_objects = 2;
  options.workload.seed = 3;
  obs::WorkloadCapture capture = obs::capture_workload(*protocol, options);
  EXPECT_EQ(capture.doc.invokes.size(), capture.result.windows.size());

  std::string bytes = obs::export_jsonl(capture.doc);
  obs::TraceDoc back = obs::import_jsonl(bytes);
  EXPECT_EQ(obs::export_jsonl(back), bytes);

  obs::DocReplay replay = obs::replay_doc(capture.doc, *protocol);
  EXPECT_TRUE(replay.ok) << replay.error;
}

// --- acceptance: offline profile == live audit -----------------------------
//
// For every registry protocol, run a mixed workload with spans on, audit
// each completed ROT live from the simulation trace, then re-derive the
// same metrics offline from the exported document alone.  Field-for-field
// equality pins that artifacts are sufficient to re-audit Table 1.

TEST(OfflineAudit, MatchesLiveAuditForEveryRegistryProtocol) {
  std::size_t audited = 0;
  for (const auto& protocol : proto::all_protocols()) {
    proto::ClusterConfig cfg;
    cfg.num_servers = 3;
    cfg.num_clients = 4;
    cfg.num_objects = 6;
    cfg.record_spans = true;
    wl::WorkloadConfig wcfg;
    wcfg.num_txs = 30;
    wcfg.write_fraction = 0.3;
    wcfg.read_objects = 2;
    wcfg.seed = 7;

    sim::Simulation sim;
    proto::IdSource ids;
    proto::Cluster cluster = protocol->build(sim, cfg, ids);
    wl::WorkloadResult result =
        wl::run_workload_sequential(sim, *protocol, cluster, ids, wcfg);

    std::vector<obs::InvokeRecord> invokes;
    for (const auto& w : result.windows)
      invokes.push_back({w.invoked_at, w.client, w.spec});
    obs::TraceDoc doc = obs::make_doc(*protocol, "xcheck", cfg, sim, cluster,
                                      std::move(invokes));
    SpanDag dag(doc);

    for (const auto& w : result.windows) {
      if (!w.read_only || !w.completed) continue;
      imposs::RotAudit live =
          imposs::audit_rot(sim.trace(), w.trace_begin, w.trace_end, w.id,
                            w.client, cluster.view);
      obs::RotProfile offline = dag.profile(w.id);
      SCOPED_TRACE(protocol->name() + " " + to_string(w.id));
      EXPECT_EQ(offline.rounds, live.rounds);
      EXPECT_EQ(offline.one_round, live.one_round);
      EXPECT_EQ(offline.nonblocking, live.nonblocking);
      EXPECT_EQ(offline.deferred_replies, live.deferred_replies);
      EXPECT_EQ(offline.max_values_per_message, live.max_values_per_message);
      EXPECT_EQ(offline.max_values_per_object_per_message,
                live.max_values_per_object_per_message);
      EXPECT_EQ(offline.max_values_per_object, live.max_values_per_object);
      EXPECT_EQ(offline.leaked_foreign_values, live.leaked_foreign_values);
      EXPECT_EQ(offline.single_server_per_object,
                live.single_server_per_object);
      EXPECT_EQ(offline.one_value, live.one_value);
      EXPECT_EQ(offline.reply_bytes, live.reply_bytes);
      ++audited;
    }
  }
  // The loop actually exercised ROTs for the whole registry.
  EXPECT_GE(audited, 10u * 15u);
}

// --- always-on client latency histograms -----------------------------------

TEST(LatencyHistograms, RecordedForEveryCompletedTransaction) {
  obs::Registry& reg = obs::Registry::global();
  reg.reset();
  auto protocol = proto::protocol_by_name("cops");
  proto::ClusterConfig cfg;
  wl::WorkloadConfig wcfg;
  wcfg.num_txs = 10;
  wcfg.seed = 11;

  sim::Simulation sim;
  proto::IdSource ids;
  proto::Cluster cluster = protocol->build(sim, cfg, ids);
  wl::WorkloadResult result =
      wl::run_workload_sequential(sim, *protocol, cluster, ids, wcfg);

  std::size_t completed = 0;
  for (const auto& w : result.windows)
    if (w.completed) ++completed;
  ASSERT_GT(completed, 0u);

  const Histogram* all = reg.find_histogram("client.tx.latency_events");
  ASSERT_NE(all, nullptr);
  EXPECT_GE(all->count(), completed);
  EXPECT_GT(all->max(), 0u);
}

}  // namespace
}  // namespace discs
