// Property-style sweeps (parameterized over seeds, sizes and protocols):
//  - transitive closure agrees with a BFS reference on random graphs;
//  - HLC timestamps respect happens-before on random message exchanges;
//  - every protocol's execution is exactly reproducible by replaying its
//    event sequence onto a configuration snapshot (the determinism the
//    proof's indistinguishability arguments rest on);
//  - visibility is monotone: once a value is visible it stays visible.
#include <gtest/gtest.h>

#include <map>
#include <queue>

#include "clock/clocks.h"
#include "consistency/relation.h"
#include "impossibility/induction.h"
#include "impossibility/visibility.h"
#include "proto/common/client.h"
#include "proto/registry.h"
#include "sim/replay.h"
#include "sim/schedule.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace discs {
namespace {

// ---------------------------------------------------------------- relation

class RelationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RelationProperty, ClosureMatchesBfsReference) {
  Rng rng(GetParam());
  std::size_t n = 4 + rng.below(40);
  cons::Relation rel(n);
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t e = 0; e < 3 * n; ++e) {
    std::size_t a = rng.below(n), b = rng.below(n);
    if (a == b) continue;
    rel.add(a, b);
    adj[a].push_back(b);
  }
  rel.close();

  for (std::size_t start = 0; start < n; ++start) {
    std::vector<bool> reach(n, false);
    std::queue<std::size_t> q;
    for (auto b : adj[start]) {
      if (!reach[b]) {
        reach[b] = true;
        q.push(b);
      }
    }
    while (!q.empty()) {
      auto u = q.front();
      q.pop();
      for (auto b : adj[u])
        if (!reach[b]) {
          reach[b] = true;
          q.push(b);
        }
    }
    for (std::size_t b = 0; b < n; ++b)
      EXPECT_EQ(rel.has(start, b), reach[b])
          << "seed=" << GetParam() << " " << start << "->" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// --------------------------------------------------------------------- hlc

class HlcProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HlcProperty, HappensBeforeImpliesTimestampOrder) {
  // N clocks exchange random messages; every event gets a timestamp and a
  // vector-clock ground truth.  If event A happens-before event B, then
  // ts(A) < ts(B) must hold.
  Rng rng(GetParam());
  constexpr std::size_t kN = 4;
  std::vector<clk::HybridLogicalClock> clocks(kN);
  std::vector<clk::VectorClock> vcs(kN, clk::VectorClock(kN));

  struct Ev {
    clk::HlcTimestamp ts;
    clk::VectorClock vc;
  };
  std::vector<Ev> events;
  struct Msg {
    clk::HlcTimestamp ts;
    clk::VectorClock vc;
    std::size_t dst;
  };
  std::vector<Msg> in_flight;

  std::uint64_t pt = 0;
  for (int step = 0; step < 300; ++step) {
    pt += rng.below(3);  // physical time advances irregularly
    std::size_t p = rng.below(kN);
    if (!in_flight.empty() && rng.chance(0.4)) {
      std::size_t i = rng.below(in_flight.size());
      Msg m = in_flight[i];
      in_flight.erase(in_flight.begin() + i);
      auto ts = clocks[m.dst].observe(m.ts, pt);
      vcs[m.dst].merge(m.vc);
      vcs[m.dst].advance(m.dst);
      events.push_back({ts, vcs[m.dst]});
    } else {
      auto ts = clocks[p].tick(pt);
      vcs[p].advance(p);
      events.push_back({ts, vcs[p]});
      if (rng.chance(0.5))
        in_flight.push_back({ts, vcs[p], rng.below(kN)});
    }
  }

  for (std::size_t a = 0; a < events.size(); ++a)
    for (std::size_t b = 0; b < events.size(); ++b)
      if (events[a].vc.lt(events[b].vc)) {
        EXPECT_LT(events[a].ts, events[b].ts) << "seed=" << GetParam();
      }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HlcProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// ----------------------------------------------------------------- replay

class ReplayProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(ReplayProperty, EveryExecutionReplaysExactly) {
  auto protocol = proto::protocol_by_name(GetParam());
  sim::Simulation sim;
  proto::IdSource ids;
  proto::ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.num_clients = 3;
  cfg.num_objects = 2;
  proto::Cluster cluster = protocol->build(sim, cfg, ids);

  Rng rng(99);
  for (int round = 0; round < 6; ++round) {
    ProcessId client = cluster.clients[round % cluster.clients.size()];
    proto::TxSpec spec =
        rng.chance(0.5) || !protocol->supports_write_tx()
            ? ids.read_tx(cluster.view.objects)
            : ids.write_tx(cluster.view.objects);
    if (spec.write_only() && !protocol->supports_write_tx()) continue;

    sim.process_as<proto::ClientBase>(client).invoke(spec);
    sim::Simulation snapshot = sim;  // includes the pending invocation
    std::size_t t0 = sim.trace().size();
    sim::run_fair(sim, {},
                  [&](const sim::Simulation& s) {
                    return s.process_as<const proto::ClientBase>(client)
                        .has_completed(spec.id);
                  },
                  60000);

    auto events = sim.trace().events_from(t0);
    auto result = sim::replay(snapshot, events);
    ASSERT_TRUE(result.clean()) << result.error;
    EXPECT_EQ(snapshot.digest(), sim.digest())
        << GetParam() << " diverged on replay at round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, ReplayProperty,
                         ::testing::Values("naivefast", "cops", "cops-snow",
                                           "wren", "fatcops", "gentlerain",
                                           "eiger", "spanner", "ramp"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// -------------------------------------------------------------- visibility

class VisibilityMonotone : public ::testing::TestWithParam<std::string> {};

TEST_P(VisibilityMonotone, OnceVisibleStaysVisible) {
  auto protocol = proto::protocol_by_name(GetParam());
  sim::Simulation sim;
  proto::IdSource ids;
  proto::ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.num_clients = 4;
  cfg.num_objects = 2;
  proto::Cluster cluster = protocol->build(sim, cfg, ids);
  ProcessId cw = cluster.clients[0];

  proto::TxSpec w = protocol->supports_write_tx()
                        ? ids.write_tx(cluster.view.objects)
                        : ids.write_one(cluster.view.objects[0]);
  sim.process_as<proto::ClientBase>(cw).invoke(w);
  sim::run_fair(sim, {},
                [&](const sim::Simulation& s) {
                  return s.process_as<const proto::ClientBase>(cw)
                      .has_completed(w.id);
                },
                60000);
  sim::run_to_quiescence(sim, {}, 20000);

  std::map<ObjectId, ValueId> written;
  for (const auto& [obj, v] : w.write_set) written[obj] = v;
  auto probe1 = imposs::probe_visibility(sim, *protocol, cluster, written,
                                         ids);
  ASSERT_TRUE(probe1.visible) << GetParam();

  // More traffic (another client's transactions), then probe again.
  sim.process_as<proto::ClientBase>(cluster.clients[1])
      .invoke(ids.read_tx(cluster.view.objects));
  sim::run_to_quiescence(sim, {}, 20000);
  auto probe2 = imposs::probe_visibility(sim, *protocol, cluster, written,
                                         ids);
  EXPECT_TRUE(probe2.visible) << GetParam() << ": visibility regressed";
}

INSTANTIATE_TEST_SUITE_P(Registry, VisibilityMonotone,
                         ::testing::Values("naivefast", "cops", "cops-snow",
                                           "wren", "fatcops", "gentlerain",
                                           "eiger", "spanner", "ramp"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// --------------------------------------------------------------- induction

struct InductionCase {
  std::string protocol;
  std::size_t servers;
  std::size_t replication;
};

class InductionSweep : public ::testing::TestWithParam<InductionCase> {};

TEST_P(InductionSweep, OutcomeInvariantUnderClusterShape) {
  const auto& param = GetParam();
  auto protocol = proto::protocol_by_name(param.protocol);
  proto::ClusterConfig cfg;
  cfg.num_servers = param.servers;
  cfg.num_objects = param.servers;
  cfg.num_clients = 4;
  cfg.replication = param.replication;
  imposs::InductionOptions opt;
  opt.max_steps = 3;
  auto report = imposs::run_induction(*protocol, cfg, opt);
  if (param.protocol == "naivefast") {
    EXPECT_EQ(report.outcome,
              imposs::InductionReport::Outcome::kCausalViolation)
        << report.summary();
  } else {
    EXPECT_EQ(report.outcome,
              imposs::InductionReport::Outcome::kTroublesomeExecution)
        << report.summary();
  }
}

std::vector<InductionCase> induction_cases() {
  std::vector<InductionCase> cases;
  for (const std::string p : {"naivefast", "stubborn"})
    for (std::size_t m : {2, 3, 5})
      for (std::size_t r : {std::size_t{1}, std::size_t{2}})
        if (r < m) cases.push_back({p, m, r});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Shapes, InductionSweep,
                         ::testing::ValuesIn(induction_cases()),
                         [](const auto& info) {
                           return info.param.protocol + "_m" +
                                  std::to_string(info.param.servers) + "_r" +
                                  std::to_string(info.param.replication);
                         });

}  // namespace
}  // namespace discs
