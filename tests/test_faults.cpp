// The programmable fault layer: plan serialization, engine determinism,
// partition-window semantics, crash/restart recovery, discs.trace.v2
// byte-exact replay, and the progress auditor against the paper's
// adversarial schedules (Theorem 1's progress property).
#include <gtest/gtest.h>

#include "fault/plan.h"
#include "fault/session.h"
#include "impossibility/progress.h"
#include "obs/trace_io.h"
#include "proto/common/client.h"
#include "proto/registry.h"
#include "sim/schedule.h"
#include "util/check.h"
#include "workload/workload.h"

namespace discs {
namespace {

using fault::FaultPlan;
using fault::FaultSession;
using fault::Selector;
using proto::ClientBase;
using proto::Cluster;
using proto::ClusterConfig;
using proto::IdSource;
using proto::TxSpec;

// --- plan serialization ----------------------------------------------------

TEST(FaultPlan, JsonRoundTripPreservesEveryRuleKind) {
  FaultPlan plan;
  plan.name = "kitchen-sink";
  plan.seed = 99;
  plan.rules.push_back(fault::drop_rule(0.25, 7, Selector::client(),
                                        Selector::server()));
  plan.rules.push_back(fault::delay_rule(3, 0.5));
  plan.rules.push_back(fault::duplicate_rule(0.1));
  plan.rules.push_back(fault::reorder_rule(0.4, 6));
  plan.rules.push_back(
      fault::partition_rule({ProcessId(0)}, {ProcessId(1)}, 10, 50));
  plan.rules.push_back(fault::hold_rule(Selector::server(),
                                        Selector::server(), 0, fault::kForever));
  plan.rules.push_back(fault::crash_rule(ProcessId(1), 20, 80, true));

  FaultPlan back = FaultPlan::parse(plan.dump());
  EXPECT_EQ(back, plan);
  // Dump is canonical: round-tripping reproduces the same bytes.
  EXPECT_EQ(back.dump(), plan.dump());
}

TEST(FaultPlan, ParseRejectsWrongSchemaAndGarbage) {
  FaultPlan plan = fault::paper_delay_adversary();
  std::string text = plan.dump();
  auto pos = text.find("discs.faultplan.v1");
  ASSERT_NE(pos, std::string::npos);
  std::string tampered = text;
  tampered.replace(pos, 18, "discs.faultplan.v9");
  EXPECT_THROW(FaultPlan::parse(tampered), CheckFailure);
  EXPECT_THROW(FaultPlan::parse("not json at all"), CheckFailure);
}

TEST(FaultPlan, ScriptedPlansAreWellFormed) {
  FaultPlan delay = fault::paper_delay_adversary();
  EXPECT_EQ(delay.name, "paper-delay-adversary");
  ASSERT_EQ(delay.rules.size(), 1u);
  EXPECT_EQ(delay.rules[0].kind, fault::FaultRule::Kind::kHold);
  EXPECT_EQ(delay.rules[0].to, fault::kForever);
  EXPECT_EQ(FaultPlan::parse(delay.dump()), delay);

  FaultPlan lossy = fault::drop_retransmit_plan(0.3, 6);
  ASSERT_EQ(lossy.rules.size(), 1u);
  EXPECT_EQ(lossy.rules[0].kind, fault::FaultRule::Kind::kDrop);
  EXPECT_EQ(lossy.rules[0].retransmit_after, 6u);
  EXPECT_EQ(FaultPlan::parse(lossy.dump()), lossy);
}

// --- partition windows -----------------------------------------------------

TEST(FaultSessionTest, PartitionWindowIsSymmetricAndBounded) {
  FaultPlan plan;
  plan.rules.push_back(
      fault::partition_rule({ProcessId(0)}, {ProcessId(1)}, 10, 50));
  FaultSession session(plan, {{ProcessId(0), ProcessId(1)}, {ProcessId(2)}});

  // Before the window: open both ways.
  EXPECT_FALSE(session.link_blocked(ProcessId(0), ProcessId(1), 9));
  EXPECT_FALSE(session.link_blocked(ProcessId(1), ProcessId(0), 9));
  // Inside: blocked both ways (bidirectional by construction).
  for (std::uint64_t t : {10u, 25u, 49u}) {
    EXPECT_TRUE(session.link_blocked(ProcessId(0), ProcessId(1), t)) << t;
    EXPECT_TRUE(session.link_blocked(ProcessId(1), ProcessId(0), t)) << t;
  }
  // The window is half-open: heals exactly at `to`.
  EXPECT_FALSE(session.link_blocked(ProcessId(0), ProcessId(1), 50));
  EXPECT_FALSE(session.link_blocked(ProcessId(1), ProcessId(0), 50));
  // Links not crossing the cut stay open throughout.
  EXPECT_FALSE(session.link_blocked(ProcessId(2), ProcessId(0), 25));
  EXPECT_FALSE(session.link_blocked(ProcessId(2), ProcessId(1), 25));
}

TEST(FaultSessionTest, HoldIsDirectional) {
  FaultPlan plan;
  plan.rules.push_back(
      fault::hold_rule(Selector::server(), Selector::server()));
  FaultSession session(plan, {{ProcessId(0), ProcessId(1)}, {ProcessId(2)}});
  EXPECT_TRUE(session.link_blocked(ProcessId(0), ProcessId(1), 0));
  EXPECT_TRUE(session.link_blocked(ProcessId(1), ProcessId(0), 0));
  // Client links are unaffected by a server->server hold.
  EXPECT_FALSE(session.link_blocked(ProcessId(2), ProcessId(0), 0));
  EXPECT_FALSE(session.link_blocked(ProcessId(0), ProcessId(2), 0));
}

// --- crash / restart -------------------------------------------------------

struct BuiltCluster {
  sim::Simulation sim;
  IdSource ids;
  Cluster cluster;
  std::shared_ptr<proto::Protocol> protocol;
};

BuiltCluster build(const std::string& name, ClusterConfig cfg = {}) {
  BuiltCluster b;
  b.protocol = proto::protocol_by_name(name);
  b.cluster = b.protocol->build(b.sim, cfg, b.ids);
  return b;
}

void drive_until(sim::Simulation& sim, ProcessId client, TxId tx,
                 std::size_t budget = 20000) {
  sim::run_fair(sim, {},
                [&](const sim::Simulation& s) {
                  return s.process_as<const ClientBase>(client).has_completed(
                      tx);
                },
                budget);
}

TEST(CrashRestart, CrashedServerIsInertUntilRestart) {
  BuiltCluster b = build("cops");
  ProcessId server = b.cluster.view.servers[0];
  ASSERT_TRUE(b.sim.crash(server, /*lossy=*/false));
  EXPECT_TRUE(b.sim.is_crashed(server));
  EXPECT_FALSE(b.sim.crash(server, false)) << "double crash";
  EXPECT_FALSE(b.sim.step(server)) << "crashed processes do not step";
  ASSERT_TRUE(b.sim.restart(server));
  EXPECT_FALSE(b.sim.is_crashed(server));
  EXPECT_FALSE(b.sim.restart(server)) << "double restart";
  EXPECT_TRUE(b.sim.step(server));
}

TEST(CrashRestart, LossyCrashLosesUnreplicatedWrite) {
  BuiltCluster b = build("cops");
  ObjectId obj = b.cluster.view.objects.front();
  ValueId initial = b.cluster.initial_values.at(obj);

  TxSpec w = b.ids.write_one(obj);
  ValueId written = w.write_set.front().second;
  ProcessId writer = b.cluster.clients[0];
  b.sim.process_as<ClientBase>(writer).invoke(w);
  drive_until(b.sim, writer, w.id);
  ASSERT_TRUE(b.sim.process_as<const ClientBase>(writer).has_completed(w.id));

  // Power-cycle the primary with state loss: its store falls back to the
  // seeded baseline (replication == 1, so nobody else holds the write).
  ProcessId primary = b.cluster.view.primary(obj);
  ASSERT_TRUE(b.sim.crash(primary, /*lossy=*/true));
  ASSERT_TRUE(b.sim.restart(primary));

  TxSpec r = b.ids.read_tx({obj});
  ProcessId reader = b.cluster.clients[1];
  b.sim.process_as<ClientBase>(reader).invoke(r);
  drive_until(b.sim, reader, r.id);
  auto got = b.sim.process_as<ClientBase>(reader).result_of(r.id);
  ASSERT_TRUE(got.count(obj));
  EXPECT_EQ(got.at(obj), initial) << "lossy crash must wipe the write";
  EXPECT_NE(got.at(obj), written);
}

TEST(CrashRestart, RecoveringCrashKeepsTheWrite) {
  BuiltCluster b = build("cops");
  ObjectId obj = b.cluster.view.objects.front();

  TxSpec w = b.ids.write_one(obj);
  ValueId written = w.write_set.front().second;
  ProcessId writer = b.cluster.clients[0];
  b.sim.process_as<ClientBase>(writer).invoke(w);
  drive_until(b.sim, writer, w.id);

  // Non-lossy crash models recovery from the versioned store: the server
  // is unavailable for a while but comes back with its state intact.
  ProcessId primary = b.cluster.view.primary(obj);
  ASSERT_TRUE(b.sim.crash(primary, /*lossy=*/false));
  ASSERT_TRUE(b.sim.restart(primary));

  TxSpec r = b.ids.read_tx({obj});
  ProcessId reader = b.cluster.clients[1];
  b.sim.process_as<ClientBase>(reader).invoke(r);
  drive_until(b.sim, reader, r.id);
  auto got = b.sim.process_as<ClientBase>(reader).result_of(r.id);
  ASSERT_TRUE(got.count(obj));
  EXPECT_EQ(got.at(obj), written);
}

// --- determinism -----------------------------------------------------------

obs::TraceDoc capture_once(const std::string& proto_name,
                           const FaultPlan& plan) {
  auto protocol = proto::protocol_by_name(proto_name);
  obs::FaultedCaptureOptions options;
  options.plan = plan;
  return obs::capture_faulted(*protocol, options);
}

TEST(FaultDeterminism, SameSeedSamePlanGivesByteIdenticalTraces) {
  FaultPlan plan;
  plan.name = "mix";
  plan.seed = 7;
  plan.rules.push_back(fault::drop_rule(0.3, 5));
  plan.rules.push_back(fault::delay_rule(2, 0.5));
  plan.rules.push_back(fault::duplicate_rule(0.2));

  obs::TraceDoc a = capture_once("cops-snow", plan);
  obs::TraceDoc b = capture_once("cops-snow", plan);
  EXPECT_EQ(obs::export_jsonl(a), obs::export_jsonl(b));
  EXPECT_EQ(a.final_digest, b.final_digest);

  // A different fault seed steers the execution elsewhere (the plan's RNG
  // is live, not vestigial).
  plan.seed = 8;
  obs::TraceDoc c = capture_once("cops-snow", plan);
  EXPECT_NE(obs::export_jsonl(a), obs::export_jsonl(c));
}

TEST(FaultDeterminism, FaultedWorkloadIsReproducible) {
  FaultPlan plan = fault::drop_retransmit_plan(0.2, 5);
  auto run = [&]() {
    BuiltCluster b = build("wren");
    FaultSession session(plan, {b.cluster.view.servers, b.cluster.clients});
    wl::WorkloadConfig wcfg;
    wcfg.num_txs = 12;
    wcfg.seed = 4;
    wl::run_workload_concurrent_faulted(b.sim, *b.protocol, b.cluster, b.ids,
                                        wcfg, session);
    return b.sim.digest();
  };
  EXPECT_EQ(run(), run());
}

// --- trace v2 --------------------------------------------------------------

TEST(TraceV2, FaultFreeCapturesKeepTheV1Header) {
  FaultPlan empty;  // no rules: the engine never fires
  obs::TraceDoc doc = capture_once("cops", empty);
  EXPECT_EQ(doc.schema, obs::kTraceSchema);
}

TEST(TraceV2, FaultedCaptureReplaysByteExactly) {
  FaultPlan plan;
  plan.name = "rich";
  plan.seed = 3;
  plan.rules.push_back(fault::drop_rule(0.35, 4));
  plan.rules.push_back(fault::delay_rule(1, 0.4));
  plan.rules.push_back(fault::duplicate_rule(0.25));

  obs::TraceDoc doc = capture_once("cops-snow", plan);
  EXPECT_EQ(doc.schema, obs::kTraceSchemaV2);
  bool has_fault = false;
  for (const auto& e : doc.events)
    has_fault |= e.event.kind != sim::Event::Kind::kStep &&
                 e.event.kind != sim::Event::Kind::kDeliver;
  ASSERT_TRUE(has_fault) << "plan fired no fault; the test is vacuous";

  std::string bytes = obs::export_jsonl(doc);
  obs::TraceDoc imported = obs::import_jsonl(bytes);
  obs::DocReplay replay = obs::replay_doc(imported);
  ASSERT_TRUE(replay.ok) << replay.error;
  EXPECT_TRUE(replay.digest_match);
  EXPECT_EQ(obs::export_jsonl(replay.reexport), bytes);
}

TEST(TraceV2, CrashAndRestartReplayByteExactly) {
  BuiltCluster b = build("cops");
  ObjectId obj = b.cluster.view.objects.front();
  std::vector<obs::InvokeRecord> invokes;
  auto invoke = [&](ProcessId client, const TxSpec& spec) {
    invokes.push_back({b.sim.now(), client, spec});
    b.sim.process_as<ClientBase>(client).invoke(spec);
  };

  TxSpec w = b.ids.write_one(obj);
  invoke(b.cluster.clients[0], w);
  drive_until(b.sim, b.cluster.clients[0], w.id);
  ASSERT_TRUE(b.sim.crash(b.cluster.view.primary(obj), /*lossy=*/true));
  ASSERT_TRUE(b.sim.restart(b.cluster.view.primary(obj)));
  TxSpec r = b.ids.read_tx({obj});
  invoke(b.cluster.clients[1], r);
  drive_until(b.sim, b.cluster.clients[1], r.id);

  obs::TraceDoc doc = obs::make_doc(*b.protocol, "crash-restart", {}, b.sim,
                                    b.cluster, invokes);
  EXPECT_EQ(doc.schema, obs::kTraceSchemaV2);
  std::string bytes = obs::export_jsonl(doc);
  obs::DocReplay replay = obs::replay_doc(obs::import_jsonl(bytes));
  ASSERT_TRUE(replay.ok) << replay.error;
  EXPECT_EQ(obs::export_jsonl(replay.reexport), bytes);
}

TEST(TraceV2, FaultEventsAreRejectedUnderV1Header) {
  FaultPlan plan;
  plan.seed = 3;
  plan.rules.push_back(fault::drop_rule(0.5, 4));
  obs::TraceDoc doc = capture_once("cops", plan);
  ASSERT_EQ(doc.schema, obs::kTraceSchemaV2);
  std::string bytes = obs::export_jsonl(doc);
  auto pos = bytes.find("discs.trace.v2");
  ASSERT_NE(pos, std::string::npos);
  bytes.replace(pos, 14, "discs.trace.v1");
  EXPECT_THROW(obs::import_jsonl(bytes), CheckFailure);
}

// --- progress auditor ------------------------------------------------------

TEST(ProgressAuditor, PaperDelayAdversaryStarvesStabilizationProtocols) {
  // gentlerain and wren gate fresh reads on a stabilization frontier that
  // only advances via server->server gossip — exactly the messages the
  // paper's delay adversary keeps in flight (Figures 2-3).  The write
  // completes, but the probe reads the old value forever.
  FaultPlan plan = fault::paper_delay_adversary();
  for (const std::string name : {"gentlerain", "wren"}) {
    auto protocol = proto::protocol_by_name(name);
    auto report = imposs::audit_progress(*protocol, plan);
    EXPECT_TRUE(report.starved()) << name << ": " << report.detail;
    EXPECT_TRUE(report.write_completed) << name << ": " << report.detail;
  }
}

TEST(ProgressAuditor, LossyNetworkWithRetransmissionsStarvesNobody) {
  // The acceptance bar: every §3.4 protocol keeps eventual visibility on a
  // lossy-but-live network (drops are not the theorem's adversary).
  FaultPlan plan = fault::drop_retransmit_plan(0.3, 6);
  for (const std::string name : {"cops-snow", "wren", "fatcops", "spanner"}) {
    auto protocol = proto::protocol_by_name(name);
    auto report = imposs::audit_progress(*protocol, plan);
    EXPECT_TRUE(report.progress()) << name << ": " << report.detail;
  }
}

TEST(ProgressAuditor, FaultFreePlanShowsProgressEverywhere) {
  FaultPlan empty;
  for (const std::string name : {"cops", "gentlerain", "eiger"}) {
    auto protocol = proto::protocol_by_name(name);
    auto report = imposs::audit_progress(*protocol, empty);
    EXPECT_TRUE(report.progress()) << name << ": " << report.detail;
  }
}

}  // namespace
}  // namespace discs
