// Exactly-once session layer and journaled crash recovery: dedup-table and
// journal unit behavior, the crash-during-commit matrix across the
// protocol corpus, and the hardened stack (exactly_once + durable_journal)
// holding its consistency claims under lossy, duplicating and crashing
// plans that the unhardened build demonstrably fails.
#include <gtest/gtest.h>

#include "chaos/chaos.h"
#include "fault/plan.h"
#include "fault/session.h"
#include "obs/registry.h"
#include "proto/common/client.h"
#include "proto/common/exactly_once.h"
#include "proto/common/journal.h"
#include "proto/common/payloads.h"
#include "proto/registry.h"
#include "sim/schedule.h"
#include "workload/workload.h"

namespace discs {
namespace {

using fault::FaultPlan;
using fault::FaultSession;
using proto::ClientBase;
using proto::Cluster;
using proto::ClusterConfig;
using proto::DedupTable;
using proto::IdSource;
using proto::Journal;
using proto::JournaledStore;
using proto::ReqId;
using proto::SessionEnvelope;
using proto::TxSpec;

ClusterConfig hardened_cluster() {
  ClusterConfig cfg;
  cfg.exactly_once = true;
  cfg.durable_journal = true;
  return cfg;
}

// --- dedup table -----------------------------------------------------------

std::shared_ptr<const proto::WriteRequest> write_req(std::uint64_t tx) {
  auto req = std::make_shared<proto::WriteRequest>();
  req->tx = TxId(tx);
  return req;
}

std::shared_ptr<const proto::WriteReply> write_reply(std::uint64_t tx) {
  auto rep = std::make_shared<proto::WriteReply>();
  rep->tx = TxId(tx);
  return rep;
}

TEST(DedupTableTest, FirstCopyExecutesAndDuplicateReplaysMemoizedReply) {
  DedupTable table;
  ProcessId client(7);
  SessionEnvelope env(ReqId{client, 0, 0}, 0, write_req(1));

  auto first = table.admit(env);
  EXPECT_EQ(first.verdict, DedupTable::Verdict::kExecute);
  EXPECT_EQ(table.size(), 1u);

  // A duplicate before the server answered is suppressed silently: the
  // original execution is still in flight and will produce the reply.
  auto early_dup = table.admit(env);
  EXPECT_EQ(early_dup.verdict, DedupTable::Verdict::kDuplicate);
  EXPECT_EQ(early_dup.replay, nullptr);

  // The server's reply to the client is attributed by (dst, tx_hint) and
  // memoized into the pending entry.
  std::vector<DedupTable::Send> outgoing{{client, write_reply(1)}};
  table.memoize_replies(outgoing, {});

  auto late_dup = table.admit(env);
  EXPECT_EQ(late_dup.verdict, DedupTable::Verdict::kDuplicate);
  ASSERT_NE(late_dup.replay, nullptr);
  ASSERT_EQ(late_dup.replay->size(), 1u);
  EXPECT_EQ(late_dup.replay->front().first, client);
  EXPECT_EQ(late_dup.replay->front().second->tx_hint(), TxId(1));
}

TEST(DedupTableTest, WatermarkPrunesAndOlderSessionsAreStale) {
  DedupTable table;
  ProcessId client(3);
  table.admit(SessionEnvelope(ReqId{client, 1, 0}, 0, write_req(1)));
  table.admit(SessionEnvelope(ReqId{client, 1, 1}, 0, write_req(2)));
  EXPECT_EQ(table.size(), 2u);

  // stable_before = 2 acknowledges both seqs: the entries are pruned, and
  // a replayed copy of an acknowledged seq is a no-op duplicate.
  auto acked = table.admit(SessionEnvelope(ReqId{client, 1, 0}, 2, write_req(1)));
  EXPECT_EQ(acked.verdict, DedupTable::Verdict::kDuplicate);
  EXPECT_EQ(acked.replay, nullptr);
  EXPECT_EQ(table.size(), 0u);

  // Envelopes from an older session incarnation are stale, never executed.
  auto stale = table.admit(SessionEnvelope(ReqId{client, 0, 9}, 0, write_req(3)));
  EXPECT_EQ(stale.verdict, DedupTable::Verdict::kStale);

  // A newer incarnation resets the sender's state and executes normally.
  auto fresh = table.admit(SessionEnvelope(ReqId{client, 2, 0}, 0, write_req(4)));
  EXPECT_EQ(fresh.verdict, DedupTable::Verdict::kExecute);
}

// --- journal ---------------------------------------------------------------

kv::Version version_of(std::uint64_t value, std::uint64_t physical = 0) {
  kv::Version v;
  v.value = ValueId(value);
  v.ts = clk::HlcTimestamp{physical, 0};
  return v;
}

TEST(JournalTest, ReplayRebuildsTheStoreAndCompactionBoundsRecords) {
  const ObjectId obj(0);
  const std::vector<std::pair<ObjectId, ValueId>> seeds{{obj, ValueId(100)}};

  Journal journal(/*compact_threshold=*/4);
  kv::VersionedStore store;
  store.put(obj, version_of(100));
  JournaledStore writer(store, &journal);

  for (std::uint64_t i = 1; i <= 10; ++i) writer.put(obj, version_of(100 + i, i));
  // Compaction kicked in: the journal snapshot absorbed the prefix, the
  // live record count stays below the threshold.
  EXPECT_TRUE(journal.compacted());
  EXPECT_LE(journal.size(), 4u);

  // Replaying (as a lossy crash does) reproduces the store exactly, even
  // though most records were truncated into the snapshot base.
  kv::VersionedStore recovered = journal.replay(seeds);
  EXPECT_EQ(recovered.digest(), store.digest());
  ASSERT_NE(recovered.latest_visible(obj), nullptr);
  EXPECT_EQ(recovered.latest_visible(obj)->value, ValueId(110));
}

TEST(JournalTest, UncompactedReplayStartsFromSeeds) {
  const ObjectId obj(2);
  Journal journal;  // default threshold, never reached here
  kv::VersionedStore store;
  store.put(obj, version_of(5));
  JournaledStore writer(store, &journal);
  writer.put(obj, version_of(6, 1));

  EXPECT_FALSE(journal.compacted());
  kv::VersionedStore recovered = journal.replay({{obj, ValueId(5)}});
  EXPECT_EQ(recovered.digest(), store.digest());
}

// --- crash-during-commit matrix --------------------------------------------

struct BuiltCluster {
  sim::Simulation sim;
  IdSource ids;
  Cluster cluster;
  std::shared_ptr<proto::Protocol> protocol;
};

BuiltCluster build(const std::string& name, ClusterConfig cfg) {
  BuiltCluster b;
  b.protocol = proto::protocol_by_name(name);
  b.cluster = b.protocol->build(b.sim, cfg, b.ids);
  return b;
}

void drive_until(sim::Simulation& sim, ProcessId client, TxId tx,
                 std::size_t budget = 40000) {
  sim::run_fair(sim, {},
                [&](const sim::Simulation& s) {
                  return s.process_as<const ClientBase>(client).has_completed(
                      tx);
                },
                budget);
}

TEST(JournaledRecovery, LossyCrashKeepsCommittedWritesAcrossProtocols) {
  obs::Registry::global().reset();
  for (const auto& p : proto::correct_protocols()) {
    BuiltCluster b = build(p->name(), hardened_cluster());
    ObjectId obj = b.cluster.view.objects.front();

    TxSpec w = b.ids.write_one(obj);
    ValueId written = w.write_set.front().second;
    ProcessId writer = b.cluster.clients[0];
    b.sim.process_as<ClientBase>(writer).invoke(w);
    drive_until(b.sim, writer, w.id);
    ASSERT_TRUE(
        b.sim.process_as<const ClientBase>(writer).has_completed(w.id))
        << p->name();

    // Power-cycle the primary with memory loss.  The journal survives the
    // crash; recovery replays it, so the committed write is still there.
    ProcessId primary = b.cluster.view.primary(obj);
    ASSERT_TRUE(b.sim.crash(primary, /*lossy=*/true)) << p->name();
    ASSERT_TRUE(b.sim.restart(primary)) << p->name();

    TxSpec r = b.ids.read_tx({obj});
    ProcessId reader = b.cluster.clients[1];
    b.sim.process_as<ClientBase>(reader).invoke(r);
    drive_until(b.sim, reader, r.id);
    auto got = b.sim.process_as<ClientBase>(reader).result_of(r.id);
    ASSERT_TRUE(got.count(obj)) << p->name();
    EXPECT_EQ(got.at(obj), written)
        << p->name() << ": post-recovery read must equal the pre-crash "
        << "committed state";
  }
  EXPECT_GT(obs::Registry::global().value("server.recovery.replayed"), 0u);
}

TEST(JournaledRecovery, WithoutJournalLossyCrashStillWipesToBaseline) {
  // The legacy semantics are preserved when the journal is off: a lossy
  // crash falls back to the seeded baseline (and says so in the counters).
  obs::Registry::global().reset();
  ClusterConfig cfg;
  cfg.exactly_once = true;  // journal off, session layer on
  BuiltCluster b = build("cops", cfg);
  ObjectId obj = b.cluster.view.objects.front();
  ValueId initial = b.cluster.initial_values.at(obj);

  TxSpec w = b.ids.write_one(obj);
  ProcessId writer = b.cluster.clients[0];
  b.sim.process_as<ClientBase>(writer).invoke(w);
  drive_until(b.sim, writer, w.id);

  ProcessId primary = b.cluster.view.primary(obj);
  ASSERT_TRUE(b.sim.crash(primary, /*lossy=*/true));
  ASSERT_TRUE(b.sim.restart(primary));

  TxSpec r = b.ids.read_tx({obj});
  ProcessId reader = b.cluster.clients[1];
  b.sim.process_as<ClientBase>(reader).invoke(r);
  drive_until(b.sim, reader, r.id);
  auto got = b.sim.process_as<ClientBase>(reader).result_of(r.id);
  ASSERT_TRUE(got.count(obj));
  EXPECT_EQ(got.at(obj), initial);
  EXPECT_GT(obs::Registry::global().value("server.crash.store_wiped"), 0u);
  EXPECT_EQ(obs::Registry::global().value("server.recovery.replayed"), 0u);
}

// --- the hardened stack under fault plans ----------------------------------

chaos::CampaignConfig hardened_campaign() {
  chaos::CampaignConfig cfg;
  cfg.cluster = hardened_cluster();
  cfg.workload.num_txs = 12;
  cfg.workload.seed = 4;
  return cfg;
}

TEST(HardenedStack, ConsistencyAndProgressHoldUnderDropRetransmit) {
  // With the session layer on, set_retransmit_after is unconditionally
  // safe: every protocol keeps its consistency claim and its progress
  // under a lossy network where both the engine and the clients resend.
  chaos::CampaignConfig cfg = hardened_campaign();
  FaultPlan plan = fault::drop_retransmit_plan(0.25, 5);
  for (const auto& p : proto::correct_protocols()) {
    auto out = chaos::run_once(*p, plan, cfg);
    EXPECT_EQ(out.violation, chaos::ViolationClass::kNone)
        << p->name() << ": " << out.detail;
  }
}

TEST(HardenedStack, ConsistencyAndProgressHoldUnderCrashAndRecover) {
  chaos::CampaignConfig cfg = hardened_campaign();
  FaultPlan plan;
  plan.name = "crash-recover";
  plan.seed = 11;
  plan.rules.push_back(
      fault::crash_rule(ProcessId(0), /*at=*/150, /*restart_at=*/400,
                        /*lossy=*/true));
  for (const auto& p : proto::correct_protocols()) {
    auto out = chaos::run_once(*p, plan, cfg);
    EXPECT_EQ(out.violation, chaos::ViolationClass::kNone)
        << p->name() << ": " << out.detail;
  }
}

TEST(HardenedStack, DuplicateDeliveryDoesNotDoubleApply) {
  obs::Registry::global().reset();
  chaos::CampaignConfig cfg = hardened_campaign();
  FaultPlan plan;
  plan.name = "duplicator";
  plan.seed = 5;
  plan.rules.push_back(fault::duplicate_rule(0.5));
  for (const auto& p : proto::correct_protocols()) {
    auto out = chaos::run_once(*p, plan, cfg);
    EXPECT_EQ(out.violation, chaos::ViolationClass::kNone)
        << p->name() << ": " << out.detail;
  }
  // The dedup table actually absorbed repeats — the run was not vacuous.
  EXPECT_GT(obs::Registry::global().value("server.dedup.hits"), 0u);
}

// --- retransmit backoff state ----------------------------------------------

TEST(RetransmitBackoff, StallStateResetsWhenTransactionCompletes) {
  // Regression pin: the backoff ladder (attempt count, recorded sends) must
  // be torn down in the completion path, so a transaction that needed
  // retransmissions cannot leak stall state into the next one.
  obs::Registry::global().reset();
  BuiltCluster b = build("cops", hardened_cluster());
  for (auto c : b.cluster.clients)
    b.sim.process_as<ClientBase>(c).set_retransmit_after(4);

  // Drops with NO engine retransmission: only the client's own retransmit
  // path can recover, so the ladder is guaranteed to be exercised.
  FaultPlan plan;
  plan.name = "client-recovers";
  plan.seed = 9;
  plan.rules.push_back(fault::drop_rule(0.3, /*retransmit_after=*/0));
  FaultSession session(plan, {b.cluster.view.servers, b.cluster.clients});

  wl::WorkloadConfig wcfg;
  wcfg.num_txs = 10;
  wcfg.seed = 2;
  auto result = wl::run_workload_concurrent_faulted(
      b.sim, *b.protocol, b.cluster, b.ids, wcfg, session);
  ASSERT_EQ(result.incomplete, 0u);
  ASSERT_GT(obs::Registry::global().value("client.backoff.retransmits"), 0u)
      << "no client ever retransmitted; the pin is vacuous";

  // Every client is idle again: attempt counter back at 0, recorded sends
  // cleared (digest field is "rtx <after>/<stall>/<sends>/a<attempt>/t...").
  for (auto c : b.cluster.clients) {
    std::string digest = b.sim.process_as<const ClientBase>(c).state_digest();
    EXPECT_NE(digest.find("/a0/t"), std::string::npos) << digest;
  }
}

}  // namespace
}  // namespace discs
