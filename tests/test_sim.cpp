// Simulation substrate tests: the paper's model semantics (Section 2) —
// step/delivery events, buffers, snapshots, replay and splicing.
#include <gtest/gtest.h>

#include "sim/replay.h"
#include "sim/schedule.h"
#include "sim/simulation.h"
#include "util/check.h"

namespace discs::sim {
namespace {

/// A trivial payload carrying an integer.
struct Ping : Payload {
  explicit Ping(int v) : value(v) {}
  int value;
  std::string describe() const override {
    return "Ping(" + std::to_string(value) + ")";
  }
};

/// Echo process: counts pings; replies Ping(v+1) to each sender.
class Echo : public Process {
 public:
  explicit Echo(ProcessId id) : Process(id) {}
  std::unique_ptr<Process> clone() const override {
    return std::make_unique<Echo>(*this);
  }
  void on_step(StepContext& ctx, const MessageVec& inbox) override {
    for (const auto& m : inbox) {
      if (const auto* p = m.as<Ping>()) {
        ++received_;
        last_ = p->value;
        if (reply_) ctx.send_make<Ping>(m.src, p->value + 1);
      }
    }
    if (send_on_next_step_.valid()) {
      ctx.send_make<Ping>(send_on_next_step_, 100);
      send_on_next_step_ = ProcessId::invalid();
    }
  }
  std::string state_digest() const override {
    return DigestBuilder()
        .field("recv", received_)
        .field("last", last_)
        .str();
  }

  int received_ = 0;
  int last_ = -1;
  bool reply_ = false;
  ProcessId send_on_next_step_ = ProcessId::invalid();
};

struct SimFixture : ::testing::Test {
  Simulation sim;
  ProcessId a, b, c;
  void SetUp() override {
    a = sim.add_process(std::make_unique<Echo>(sim.next_process_id()));
    b = sim.add_process(std::make_unique<Echo>(sim.next_process_id()));
    c = sim.add_process(std::make_unique<Echo>(sim.next_process_id()));
  }
  Echo& echo(ProcessId p) { return sim.process_as<Echo>(p); }
};

TEST_F(SimFixture, MessageFlowThroughBuffers) {
  echo(a).send_on_next_step_ = b;
  sim.step(a);
  EXPECT_EQ(sim.network().in_flight_count(), 1u);
  EXPECT_EQ(echo(b).received_, 0);

  // Delivery puts the message in b's income buffer; only b's next step
  // consumes it (the model's two-phase communication).
  MsgId m = sim.network().in_flight().front().id;
  EXPECT_TRUE(sim.deliver(m));
  EXPECT_EQ(sim.network().in_flight_count(), 0u);
  EXPECT_EQ(echo(b).received_, 0);
  sim.step(b);
  EXPECT_EQ(echo(b).received_, 1);
  EXPECT_EQ(echo(b).last_, 100);
}

TEST_F(SimFixture, DeliverUnknownMessageFails) {
  EXPECT_FALSE(sim.deliver(MsgId(123456)));
}

TEST_F(SimFixture, MessageIdsEncodeSenderAndSequence) {
  echo(a).send_on_next_step_ = b;
  sim.step(a);
  echo(a).send_on_next_step_ = c;
  sim.step(a);
  std::vector<Message> msgs(sim.network().in_flight().begin(),
                            sim.network().in_flight().end());
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msg_sender(msgs[0].id), a);
  EXPECT_EQ(msg_seq(msgs[0].id), 0u);
  EXPECT_EQ(msg_seq(msgs[1].id), 1u);
}

TEST_F(SimFixture, SnapshotBranchesIndependently) {
  echo(a).send_on_next_step_ = b;
  sim.step(a);

  Simulation branch = sim;  // snapshot
  // Progress only the branch.
  branch.deliver_between(a, b);
  branch.step(b);
  EXPECT_EQ(branch.process_as<Echo>(b).received_, 1);
  EXPECT_EQ(echo(b).received_, 0);  // original untouched
  EXPECT_EQ(sim.network().in_flight_count(), 1u);
}

TEST_F(SimFixture, DigestDetectsStateDifference) {
  Simulation branch = sim;
  EXPECT_EQ(sim.digest(), branch.digest());
  branch.process_as<Echo>(a).received_ = 99;
  EXPECT_NE(sim.digest(), branch.digest());
}

TEST_F(SimFixture, ReplayReproducesExecution) {
  // Record an execution, then replay its event sequence from the same
  // starting snapshot: final configurations must be indistinguishable.
  Simulation start = sim;
  echo(a).send_on_next_step_ = b;
  echo(b).reply_ = true;
  sim.step(a);
  sim.deliver_between(a, b);
  sim.step(b);
  sim.deliver_between(b, a);
  sim.step(a);

  auto events = sim.trace().events_from(start.trace().size());
  Simulation replayed = start;
  replayed.process_as<Echo>(a).send_on_next_step_ = b;
  replayed.process_as<Echo>(b).reply_ = true;
  auto result = replay(replayed, events);
  ASSERT_TRUE(result.clean()) << result.error;
  EXPECT_EQ(replayed.digest(), sim.digest());
}

TEST_F(SimFixture, SplicedReplayPreservesMessageIds) {
  // Like the proof's beta_p: drop one process's steps; the others' sends
  // keep their ids, so recorded deliveries still apply.
  Simulation start = sim;
  echo(a).send_on_next_step_ = b;
  echo(c).send_on_next_step_ = b;
  std::size_t t0 = sim.trace().size();
  sim.step(c);  // c sends first in the original
  sim.step(a);
  sim.deliver_all();
  sim.step(b);
  EXPECT_EQ(echo(b).received_, 2);

  // Filter out all events involving c (its step, and deliveries of its
  // messages).
  std::span<const EventRecord> records(sim.trace().records());
  auto keep = [&](const EventRecord& r) {
    if (r.event.kind == Event::Kind::kStep) return r.event.process != c;
    return msg_sender(r.event.msg) != c;
  };
  auto filtered =
      filter_events(records.subspan(t0), [&](const EventRecord& r) {
        return keep(r);
      });

  Simulation replayed = start;
  replayed.process_as<Echo>(a).send_on_next_step_ = b;
  replayed.process_as<Echo>(c).send_on_next_step_ = b;
  auto result = replay(replayed, filtered);
  ASSERT_TRUE(result.clean()) << result.error;
  EXPECT_EQ(replayed.process_as<Echo>(b).received_, 1);  // only a's ping
}

TEST_F(SimFixture, ReplayMissingDeliveryBehaviour) {
  std::vector<Event> events{Event::deliver(MsgId(42))};
  Simulation s1 = sim;
  auto strict = replay(s1, events);
  EXPECT_FALSE(strict.ok);

  Simulation s2 = sim;
  ReplayOptions opts;
  opts.skip_missing_deliveries = true;
  auto lax = replay(s2, events);
  lax = replay(s2, events, opts);
  EXPECT_TRUE(lax.ok);
  EXPECT_EQ(lax.skipped.size(), 1u);
}

TEST_F(SimFixture, MultipleSendsToOneNeighborAreBatched) {
  // The model allows one MESSAGE per neighbor per step; several payloads
  // to the same destination travel as a single batch message.
  struct Chatty : Process {
    using Process::Process;
    ProcessId dst;
    std::unique_ptr<Process> clone() const override {
      return std::make_unique<Chatty>(*this);
    }
    void on_step(StepContext& ctx, const MessageVec&) override {
      ctx.send_make<Ping>(dst, 1);
      ctx.send_make<Ping>(dst, 2);
    }
    std::string state_digest() const override { return ""; }
  };
  Simulation s;
  auto id0 = s.next_process_id();
  auto chatty = std::make_unique<Chatty>(id0);
  s.add_process(std::move(chatty));
  auto id1 = s.add_process(std::make_unique<Echo>(s.next_process_id()));
  s.process_as<Chatty>(id0).dst = id1;
  s.step(id0);
  ASSERT_EQ(s.network().in_flight_count(), 1u);  // ONE message
  const Message& m = s.network().in_flight().front();
  auto parts = payload_parts(m);
  ASSERT_EQ(parts.size(), 2u);  // carrying both payloads
  EXPECT_NE(dynamic_cast<const Ping*>(parts[0].get()), nullptr);
}

TEST_F(SimFixture, RunFairTerminatesOnQuiescence) {
  echo(a).send_on_next_step_ = b;
  echo(b).reply_ = true;
  auto stats = run_to_quiescence(sim, {}, 1000);
  EXPECT_LT(stats.events(), 1000u);
  EXPECT_TRUE(sim.network_idle());
  EXPECT_EQ(echo(b).received_, 1);
  EXPECT_EQ(echo(a).last_, 101);  // got the reply
}

TEST_F(SimFixture, NetworkQueries) {
  echo(a).send_on_next_step_ = b;
  sim.step(a);
  echo(a).send_on_next_step_ = c;
  sim.step(a);

  EXPECT_EQ(sim.network().in_flight_count(), 2u);
  EXPECT_EQ(sim.network().in_flight_between(a, b).size(), 1u);
  EXPECT_EQ(sim.network().in_flight_between(a, c).size(), 1u);
  EXPECT_TRUE(sim.network().in_flight_between(b, c).empty());
  EXPECT_FALSE(sim.network().idle());

  MsgId first = sim.network().in_flight().front().id;
  EXPECT_TRUE(sim.network().find_in_flight(first).has_value());
  sim.deliver(first);
  EXPECT_FALSE(sim.network().find_in_flight(first).has_value());
  EXPECT_EQ(sim.network().income_of(b).size(), 1u);
  EXPECT_EQ(sim.network().income_count(), 1u);
  EXPECT_FALSE(sim.network().idle());  // undelivered + unconsumed remain

  sim.deliver_between(a, c);
  sim.step(b);
  sim.step(c);
  EXPECT_TRUE(sim.network().idle());
}

TEST_F(SimFixture, DeliverBetweenPreservesSendOrder) {
  echo(a).send_on_next_step_ = b;
  sim.step(a);
  echo(a).send_on_next_step_ = b;
  sim.step(a);
  EXPECT_EQ(sim.deliver_between(a, b), 2u);
  auto income = sim.network().income_of(b);
  ASSERT_EQ(income.size(), 2u);
  EXPECT_LT(msg_seq(income[0].id), msg_seq(income[1].id));
}

TEST_F(SimFixture, TraceRecordsConsumedAndSent) {
  echo(b).reply_ = true;
  echo(a).send_on_next_step_ = b;
  sim.step(a);
  sim.deliver_between(a, b);
  sim.step(b);

  const auto& records = sim.trace().records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].event.kind, Event::Kind::kStep);
  EXPECT_EQ(records[0].sent.size(), 1u);
  EXPECT_EQ(records[1].event.kind, Event::Kind::kDeliver);
  EXPECT_EQ(records[1].delivered.dst, b);
  EXPECT_EQ(records[2].consumed.size(), 1u);
  EXPECT_EQ(records[2].sent.size(), 1u);  // the echo reply

  // Rendering mentions the events in order.
  auto text = sim.trace().render();
  EXPECT_NE(text.find("step(p0)"), std::string::npos);
  EXPECT_NE(text.find("deliver("), std::string::npos);
  EXPECT_NE(text.find("Ping"), std::string::npos);

  // messages_sent over a window.
  EXPECT_EQ(sim.trace().messages_sent(0, 3).size(), 2u);
  EXPECT_EQ(sim.trace().messages_sent(1, 2).size(), 0u);
}

TEST_F(SimFixture, VirtualTimeCountsEvents) {
  EXPECT_EQ(sim.now(), 0u);
  sim.step(a);
  sim.step(b);
  EXPECT_EQ(sim.now(), 2u);
  echo(a).send_on_next_step_ = b;
  sim.step(a);
  MsgId m = sim.network().in_flight().front().id;
  sim.deliver(m);
  EXPECT_EQ(sim.now(), 4u);
}

TEST_F(SimFixture, AddProcessEnforcesSequentialIds) {
  Simulation s;
  EXPECT_THROW(s.add_process(std::make_unique<Echo>(ProcessId(5))),
               CheckFailure);
}

TEST_F(SimFixture, ProcessAsTypeChecked) {
  struct Other : Process {
    using Process::Process;
    std::unique_ptr<Process> clone() const override {
      return std::make_unique<Other>(*this);
    }
    void on_step(StepContext&, const MessageVec&) override {}
    std::string state_digest() const override { return ""; }
  };
  EXPECT_NO_THROW(sim.process_as<Echo>(a));
  EXPECT_THROW(sim.process_as<Other>(a), CheckFailure);
}

TEST_F(SimFixture, EventDescribeAndEquality) {
  Event s1 = Event::step(a);
  Event s2 = Event::step(a);
  Event d = Event::deliver(MsgId(7));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, d);
  EXPECT_NE(s1.describe().find("step"), std::string::npos);
  EXPECT_NE(d.describe().find("deliver"), std::string::npos);
}

TEST_F(SimFixture, RunRandomIsDeterministicPerSeed) {
  auto build = [&](Simulation& s) {
    s.process_as<Echo>(a).send_on_next_step_ = b;
    s.process_as<Echo>(b).reply_ = true;
  };
  Simulation s1 = sim, s2 = sim;
  build(s1);
  build(s2);
  Rng r1(99), r2(99);
  run_random(s1, {}, r1, nullptr, 200);
  run_random(s2, {}, r2, nullptr, 200);
  EXPECT_EQ(s1.digest(), s2.digest());
}

}  // namespace
}  // namespace discs::sim
