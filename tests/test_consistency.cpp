// Consistency checker tests, including the paper's key scenarios: the
// Lemma 1 mixed-read anomaly must be rejected by the causal checker.
#include <gtest/gtest.h>

#include "consistency/checkers.h"

namespace discs::cons {
namespace {

using hist::History;
using hist::TxRecord;

TxRecord make_tx(std::uint64_t id, std::uint64_t client,
                 std::vector<std::pair<std::uint64_t, std::uint64_t>> reads,
                 std::vector<std::pair<std::uint64_t, std::uint64_t>> writes,
                 std::uint64_t invoke = 0, std::uint64_t complete = 0) {
  static std::uint64_t seq = 0;
  TxRecord t;
  t.id = TxId(id);
  t.client = ProcessId(client);
  t.invoked = t.completed = true;
  t.invoke_seq = invoke ? invoke : ++seq;
  t.complete_seq = complete ? complete : t.invoke_seq + 1;
  for (auto [o, v] : reads)
    t.reads.push_back({ObjectId(o), ValueId(v), true});
  for (auto [o, v] : writes)
    t.writes.push_back({ObjectId(o), ValueId(v), true});
  return t;
}

History base_history() {
  History h;
  h.set_initial(ObjectId(0), ValueId(100));
  h.set_initial(ObjectId(1), ValueId(101));
  return h;
}

TEST(Relation, ClosureAndCycles) {
  Relation r(4);
  r.add(0, 1);
  r.add(1, 2);
  r.close();
  EXPECT_TRUE(r.has(0, 2));
  EXPECT_TRUE(r.acyclic());

  Relation c(3);
  c.add(0, 1);
  c.add(1, 0);
  c.close();
  EXPECT_FALSE(c.acyclic());
  EXPECT_EQ(c.cycle_members().size(), 2u);
}

TEST(Relation, TopologicalOrder) {
  Relation r(3);
  r.add(2, 1);
  r.add(1, 0);
  auto order = r.topological_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[2], 0u);

  r.add(0, 2);
  EXPECT_TRUE(r.topological_order().empty());
}

TEST(Causal, EmptyAndReadInitialAreConsistent) {
  History h = base_history();
  EXPECT_TRUE(check_causal_consistency(h).ok());
  h.add(make_tx(1, 1, {{0, 100}, {1, 101}}, {}));
  EXPECT_TRUE(check_causal_consistency(h).ok());
}

TEST(Causal, ReadYourOwnSequence) {
  History h = base_history();
  h.add(make_tx(1, 1, {}, {{0, 1}}));
  h.add(make_tx(2, 1, {{0, 1}}, {}));
  EXPECT_TRUE(check_causal_consistency(h).ok());
}

TEST(Causal, GarbageReadFlagged) {
  History h = base_history();
  h.add(make_tx(1, 1, {{0, 999}}, {}));
  auto r = check_causal_consistency(h);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.violations[0].kind, "garbage-read");
}

TEST(Causal, WrongObjectReadFlagged) {
  History h = base_history();
  h.add(make_tx(1, 1, {}, {{0, 1}}));
  h.add(make_tx(2, 2, {{1, 1}}, {}));  // value 1 was written to object 0
  auto r = check_causal_consistency(h);
  EXPECT_FALSE(r.ok());
  bool found = false;
  for (const auto& v : r.violations) found |= v.kind == "wrong-object-read";
  EXPECT_TRUE(found) << r.summary();
}

TEST(Causal, Lemma1MixedReadIsViolation) {
  // The paper's Lemma 1 scenario: cw reads initial values, then writes
  // both objects in Tw; a reader returning (x0_new, x1_initial) — or any
  // mix — violates causal consistency.
  History h = base_history();
  h.add(make_tx(1, 1, {{0, 100}, {1, 101}}, {}));        // T_in_r by cw
  h.add(make_tx(2, 1, {}, {{0, 1}, {1, 2}}));            // Tw by cw
  h.add(make_tx(3, 2, {{0, 1}, {1, 101}}, {}));          // mixed reader
  auto r = check_causal_consistency(h);
  EXPECT_FALSE(r.ok());
  bool found = false;
  for (const auto& v : r.violations) found |= v.kind == "intervening-write";
  EXPECT_TRUE(found) << r.summary();
}

TEST(Causal, BothNewOrBothOldAreFine) {
  History h = base_history();
  h.add(make_tx(1, 1, {{0, 100}, {1, 101}}, {}));
  h.add(make_tx(2, 1, {}, {{0, 1}, {1, 2}}));
  h.add(make_tx(3, 2, {{0, 1}, {1, 2}}, {}));
  h.add(make_tx(4, 3, {{0, 100}, {1, 101}}, {}));
  EXPECT_TRUE(check_causal_consistency(h).ok())
      << check_causal_consistency(h).summary();
}

TEST(Causal, TransitiveDependencyViolation) {
  // c1 writes x0; c2 reads x0 then writes y1; a reader seeing y1 but the
  // initial x0 breaks causality (the COPS anomaly).
  History h = base_history();
  h.add(make_tx(1, 1, {}, {{0, 1}}));
  h.add(make_tx(2, 2, {{0, 1}}, {}));
  h.add(make_tx(3, 2, {}, {{1, 2}}));
  h.add(make_tx(4, 3, {{0, 100}, {1, 2}}, {}));
  auto r = check_causal_consistency(h);
  EXPECT_FALSE(r.ok());
}

TEST(Causal, OwnWriteMustBeObserved) {
  History h = base_history();
  TxRecord t = make_tx(1, 1, {{0, 100}}, {{0, 5}});
  h.add(t);
  auto r = check_causal_consistency(h);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.violations[0].kind, "own-write-missed");
}

TEST(ReadAtomicity, FracturedReadFlagged) {
  History h = base_history();
  h.add(make_tx(1, 1, {}, {{0, 1}, {1, 2}}));       // atomic pair
  h.add(make_tx(2, 2, {{0, 1}, {1, 101}}, {}));     // half of it
  auto r = check_read_atomicity(h);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.violations[0].kind, "fractured-read");
}

TEST(ReadAtomicity, NewerOverwriteIsNotFractured) {
  History h = base_history();
  h.add(make_tx(1, 1, {}, {{0, 1}, {1, 2}}));
  h.add(make_tx(2, 1, {}, {{1, 3}}));               // newer write on X1
  h.add(make_tx(3, 2, {{0, 1}, {1, 3}}, {}));       // sees newer: fine
  EXPECT_TRUE(check_read_atomicity(h).ok())
      << check_read_atomicity(h).summary();
}

TEST(Serializability, SimpleSerializableHistory) {
  History h = base_history();
  h.add(make_tx(1, 1, {}, {{0, 1}}));
  h.add(make_tx(2, 2, {{0, 1}}, {{1, 2}}));
  h.add(make_tx(3, 3, {{0, 1}, {1, 2}}, {}));
  EXPECT_TRUE(check_serializability(h).ok());
}

TEST(Serializability, WriteSkewStyleNonSerializable) {
  // Two readers each observe the other's write missing: T1 reads initial
  // X1 and writes X0; T2 reads initial X0 and writes X1; a third reads
  // both new values.  Serializable orders exist for subsets but reads of
  // (initial, initial) by both writers forbid any total order in which
  // each sees the other's write absent yet the final reader sees both...
  History h = base_history();
  h.add(make_tx(1, 1, {{1, 101}}, {{0, 1}}));
  h.add(make_tx(2, 2, {{0, 100}}, {{1, 2}}));
  h.add(make_tx(3, 3, {{0, 1}, {1, 2}}, {}));
  // This one IS serializable: T1, T2, T3 works (T1 sees initial X1 —
  // true before T2; T2 sees initial X0? No: T1 wrote X0 first).  Order
  // T2, T1, T3 symmetric.  Neither works, so: not serializable.
  auto r = check_serializability(h);
  EXPECT_FALSE(r.ok()) << "history should admit no legal total order";
}

TEST(Serializability, CausalButNotSerializableMix) {
  // Classic: two concurrent single writes, two readers observing them in
  // opposite orders.  Causally fine (concurrent writes), not serializable
  // ... with multi-value reads in one transaction each.
  History h = base_history();
  h.add(make_tx(1, 1, {}, {{0, 1}}));
  h.add(make_tx(2, 2, {}, {{1, 2}}));
  h.add(make_tx(3, 3, {{0, 1}, {1, 101}}, {}));  // saw w1 not w2
  h.add(make_tx(4, 4, {{0, 100}, {1, 2}}, {}));  // saw w2 not w1
  EXPECT_TRUE(check_causal_consistency(h).ok())
      << check_causal_consistency(h).summary();
  EXPECT_FALSE(check_serializability(h).ok());
}

TEST(StrictSerializability, RealTimeOrderMatters) {
  // T1 completes before T2 starts; a reader that later sees T1's value
  // but not T2's is serializable, but placing T2 before T1 is forbidden
  // by real time.
  History h = base_history();
  h.add(make_tx(1, 1, {}, {{0, 1}}, /*invoke=*/10, /*complete=*/11));
  h.add(make_tx(2, 2, {}, {{0, 2}}, /*invoke=*/20, /*complete=*/21));
  h.add(make_tx(3, 3, {{0, 1}}, {}, /*invoke=*/30, /*complete=*/31));
  EXPECT_TRUE(check_serializability(h).ok());
  EXPECT_FALSE(check_strict_serializability(h).ok());
}

TEST(Sessions, ReadYourWritesViolation) {
  History h = base_history();
  h.add(make_tx(1, 1, {}, {{0, 1}}));
  h.add(make_tx(2, 1, {{0, 100}}, {}));  // own write missing
  auto r = check_session_guarantees(h);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.violations[0].kind, "read-your-writes");
}

TEST(Sessions, MonotonicReadsViolation) {
  History h = base_history();
  h.add(make_tx(1, 1, {}, {{0, 1}}));
  h.add(make_tx(2, 2, {{0, 1}}, {}));
  h.add(make_tx(3, 2, {{0, 100}}, {}));  // regressed to the initial value
  auto r = check_session_guarantees(h);
  EXPECT_FALSE(r.ok());
  bool found = false;
  for (const auto& v : r.violations) found |= v.kind == "monotonic-reads";
  EXPECT_TRUE(found) << r.summary();
}

TEST(Sessions, CleanSessionPasses) {
  History h = base_history();
  h.add(make_tx(1, 1, {}, {{0, 1}}));
  h.add(make_tx(2, 1, {{0, 1}}, {}));
  h.add(make_tx(3, 1, {{0, 1}, {1, 101}}, {}));
  EXPECT_TRUE(check_session_guarantees(h).ok());
}

TEST(Serializability, BudgetExhaustionReportsUnknown) {
  // Many concurrent writers of the same object with no reads: hugely
  // permutable; a budget of ~1 node cannot even place the first tx chain.
  History h = base_history();
  for (std::uint64_t i = 1; i <= 12; ++i)
    h.add(make_tx(i, i, {}, {{0, i}}));
  auto r = check_serializability(h, /*budget=*/1);
  EXPECT_EQ(r.verdict, Verdict::kUnknown) << r.summary();
}

TEST(Causal, IncompleteTransactionsAreIgnoredViaComplete) {
  // complete(H): a pending write-only transaction does not (yet) dictate
  // anything; its values must simply not be read.
  History h = base_history();
  auto pending = make_tx(1, 1, {}, {{0, 1}, {1, 2}});
  pending.completed = false;
  h.add(pending);
  h.add(make_tx(2, 2, {{0, 100}, {1, 101}}, {}));
  auto complete = h.complete();
  EXPECT_TRUE(check_causal_consistency(complete).ok());
}

TEST(Causal, CommHClosureReadingPendingWriteIsConsistent) {
  // comm(H) completes outstanding write responses: reading BOTH values of
  // a pending write-only transaction is legal once the record is treated
  // as completed — exactly how the mix exhibit synthesizes Tw.
  History h = base_history();
  h.add(make_tx(1, 1, {}, {{0, 1}, {1, 2}}));  // treated as completed
  h.add(make_tx(2, 2, {{0, 1}, {1, 2}}, {}));
  EXPECT_TRUE(check_causal_consistency(h).ok());
}

TEST(Causal, ConcurrentWritersNoAnomalies) {
  // Two clients write the same object concurrently; readers may disagree
  // on the order only if they never observe both in conflicting orders
  // per-object regression is what monotonic-reads would catch; a single
  // read each is fine causally.
  History h = base_history();
  h.add(make_tx(1, 1, {}, {{0, 1}}));
  h.add(make_tx(2, 2, {}, {{0, 2}}));
  h.add(make_tx(3, 3, {{0, 1}}, {}));
  h.add(make_tx(4, 4, {{0, 2}}, {}));
  EXPECT_TRUE(check_causal_consistency(h).ok());
}

TEST(Causal, ChainOfThreeTransitivity) {
  // w(X0)a -> read a, w(X1)b -> read b, w(X2... over three objects, then
  // a reader observing the end of the chain with the start stale.
  History h = base_history();
  h.set_initial(ObjectId(2), ValueId(102));
  h.add(make_tx(1, 1, {}, {{0, 1}}));
  h.add(make_tx(2, 2, {{0, 1}}, {}));
  h.add(make_tx(3, 2, {}, {{1, 2}}));
  h.add(make_tx(4, 3, {{1, 2}}, {}));
  h.add(make_tx(5, 3, {}, {{2, 3}}));
  // Reader: new X2 but initial X0 — a two-hop causality violation.
  h.add(make_tx(6, 4, {{0, 100}, {2, 3}}, {}));
  auto r = check_causal_consistency(h);
  EXPECT_FALSE(r.ok());
}

TEST(SnapshotIsolation, CleanHistoryPasses) {
  History h = base_history();
  h.add(make_tx(1, 1, {}, {{0, 1}, {1, 2}}));
  h.add(make_tx(2, 2, {{0, 1}, {1, 2}}, {}));
  h.add(make_tx(3, 3, {{0, 100}, {1, 101}}, {}));
  EXPECT_TRUE(check_snapshot_isolation(h).ok())
      << check_snapshot_isolation(h).summary();
}

TEST(SnapshotIsolation, FracturedReadFlagged) {
  History h = base_history();
  h.add(make_tx(1, 1, {}, {{0, 1}, {1, 2}}));
  h.add(make_tx(2, 2, {{0, 1}, {1, 101}}, {}));
  auto r = check_snapshot_isolation(h);
  EXPECT_FALSE(r.ok());
}

TEST(SnapshotIsolation, SkewedSnapshotFlagged) {
  // T reads X0 from init and X1 from W2, where W1 wrote X0 causally
  // between them: no snapshot contains (init X0, W2's X1).
  History h = base_history();
  h.add(make_tx(1, 1, {}, {{0, 1}}));            // W1 writes X0
  h.add(make_tx(2, 1, {{0, 1}}, {{1, 2}}));      // W2: after W1, writes X1
  h.add(make_tx(3, 2, {{0, 100}, {1, 2}}, {}));  // the skewed reader
  auto r = check_snapshot_isolation(h);
  EXPECT_FALSE(r.ok());
  bool found = false;
  for (const auto& v : r.violations) found |= v.kind == "skewed-snapshot";
  EXPECT_TRUE(found) << r.summary();
}

TEST(SnapshotIsolation, LostUpdateFlagged) {
  History h = base_history();
  h.add(make_tx(1, 1, {{0, 100}}, {{0, 1}}));  // read v100, write v1
  h.add(make_tx(2, 2, {{0, 100}}, {{0, 2}}));  // read v100 too, write v2
  auto r = check_snapshot_isolation(h);
  EXPECT_FALSE(r.ok());
  bool found = false;
  for (const auto& v : r.violations) found |= v.kind == "lost-update";
  EXPECT_TRUE(found) << r.summary();
}

TEST(SnapshotIsolation, SequentialUpdatesAreNotLost) {
  History h = base_history();
  h.add(make_tx(1, 1, {{0, 100}}, {{0, 1}}));
  h.add(make_tx(2, 2, {{0, 1}}, {{0, 2}}));  // reads T1's version: fine
  EXPECT_TRUE(check_snapshot_isolation(h).ok())
      << check_snapshot_isolation(h).summary();
}

TEST(StrictSerializability, ConcurrentTxsMayCommuteInAnyOrder) {
  History h = base_history();
  // Overlapping in real time: either order is acceptable.
  h.add(make_tx(1, 1, {}, {{0, 1}}, /*invoke=*/10, /*complete=*/30));
  h.add(make_tx(2, 2, {}, {{0, 2}}, /*invoke=*/20, /*complete=*/40));
  h.add(make_tx(3, 3, {{0, 1}}, {}, /*invoke=*/50, /*complete=*/60));
  // T3 reads T1's value although T2 committed later in real time — legal
  // iff T2 can be ordered before T1; both overlap, so yes.
  EXPECT_TRUE(check_strict_serializability(h).ok())
      << check_strict_serializability(h).summary();
}

}  // namespace
}  // namespace discs::cons
