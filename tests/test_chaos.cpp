// The chaos-audit harness: fairness envelope of the plan generator,
// ReproSpec round-trips, fault-plan shrinking on a seeded violation, and
// the committed counterexample fixture (a lossy baseline-wipe liveness bug
// that the durable journal fixes).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "chaos/chaos.h"
#include "chaos/shrink.h"
#include "fault/plan.h"
#include "proto/registry.h"
#include "util/check.h"

namespace discs {
namespace {

using chaos::CampaignConfig;
using chaos::Counterexample;
using chaos::ReproSpec;
using chaos::ViolationClass;
using fault::FaultPlan;
using fault::FaultRule;

proto::ClusterConfig wipe_prone_cluster() {
  // The committed fixture's configuration: session layer on, journal OFF —
  // a lossy server crash wipes committed writes back to the baseline.
  proto::ClusterConfig cfg;
  cfg.exactly_once = true;
  cfg.durable_journal = false;
  return cfg;
}

CampaignConfig wipe_prone_campaign() {
  CampaignConfig cfg;
  cfg.cluster = wipe_prone_cluster();
  cfg.workload.num_txs = 24;
  return cfg;
}

// --- plan generator --------------------------------------------------------

TEST(RandomPlan, DeterministicAndInsideTheFairnessEnvelope) {
  proto::ClusterConfig cluster;
  for (std::size_t i = 0; i < 24; ++i) {
    FaultPlan a = chaos::random_plan(42, i, cluster);
    FaultPlan b = chaos::random_plan(42, i, cluster);
    EXPECT_EQ(a, b) << "plan generation must be a pure function of "
                    << "(campaign seed, index)";
    ASSERT_FALSE(a.rules.empty());
    for (const auto& r : a.rules) {
      // The envelope: drops are retransmitted, holds are bounded, crashed
      // servers restart.  Violations found inside it are robustness bugs,
      // not Theorem 1's legitimate starvation.
      if (r.kind == FaultRule::Kind::kDrop)
        EXPECT_GT(r.retransmit_after, 0u);
      if (r.kind == FaultRule::Kind::kHold ||
          r.kind == FaultRule::Kind::kPartition)
        EXPECT_NE(r.to, fault::kForever);
      if (r.kind == FaultRule::Kind::kCrash) {
        EXPECT_NE(r.restart_at, fault::kForever);
        EXPECT_LT(r.process.value(),
                  static_cast<std::uint64_t>(cluster.num_servers));
      }
    }
  }
  // Different seeds diverge (the generator is not constant).
  EXPECT_NE(chaos::random_plan(42, 0, cluster).dump(),
            chaos::random_plan(43, 0, cluster).dump());
}

// --- repro spec ------------------------------------------------------------

TEST(ReproSpecTest, JsonRoundTripPreservesEveryField) {
  ReproSpec spec;
  spec.protocol = "cops";
  spec.cluster = wipe_prone_cluster();
  spec.cluster.journal_compact_threshold = 64;
  spec.workload.num_txs = 7;
  spec.workload.seed = 3;
  spec.client_retransmit_after = 5;
  spec.plan.name = "pinned";
  spec.plan.seed = 17;
  spec.plan.rules.push_back(fault::crash_rule(ProcessId(1), 10, 20, true));
  spec.expected = ViolationClass::kLiveness;

  ReproSpec back = ReproSpec::parse(spec.dump());
  EXPECT_EQ(back.dump(), spec.dump());
  EXPECT_EQ(back.protocol, "cops");
  EXPECT_EQ(back.expected, ViolationClass::kLiveness);
  EXPECT_EQ(back.cluster.journal_compact_threshold, 64u);
  EXPECT_TRUE(back.cluster.exactly_once);
  EXPECT_FALSE(back.cluster.durable_journal);
  EXPECT_EQ(back.plan, spec.plan);
}

TEST(ReproSpecTest, FlightFieldRoundTripsAndStaysOptional) {
  ReproSpec spec;
  spec.protocol = "cops";
  spec.expected = ViolationClass::kSafety;
  // No flight: the field is omitted entirely, so pre-flight specs and
  // fresh ones serialize identically.
  EXPECT_EQ(spec.dump().find("\"flight\""), std::string::npos);
  ReproSpec no_flight = ReproSpec::parse(spec.dump());
  EXPECT_TRUE(no_flight.flight.empty());

  obs::FlightEvent step;
  step.seq = 41;
  step.kind = "step";
  step.process = 2;
  step.consumed = 1;
  step.sent = 3;
  obs::FlightEvent deliver;
  deliver.seq = 42;
  deliver.kind = "deliver";
  deliver.process = 1;
  deliver.msg_id = 7;
  deliver.src = 0;
  deliver.payload = "RotReply";
  spec.flight = {step, deliver};
  ReproSpec back = ReproSpec::parse(spec.dump());
  EXPECT_EQ(back.dump(), spec.dump());
  ASSERT_EQ(back.flight.size(), 2u);
  EXPECT_EQ(back.flight[0], step);
  EXPECT_EQ(back.flight[1], deliver);
}

TEST(ReproSpecTest, ParseRejectsWrongSchema) {
  ReproSpec spec;
  spec.protocol = "cops";
  std::string text = spec.dump();
  auto pos = text.find("discs.chaosrepro.v1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 19, "discs.chaosrepro.v9");
  EXPECT_THROW(ReproSpec::parse(text), CheckFailure);
}

// --- shrinking -------------------------------------------------------------

TEST(Shrinker, ReducesSeededViolationToTheSingleGuiltyRule) {
  // Seed a known violation (lossy crash wipes a committed write when the
  // journal is off) and bury it under noise rules.  The shrinker must peel
  // the noise away and keep the violation class stable.
  auto protocol = proto::protocol_by_name("cops");
  CampaignConfig cfg = wipe_prone_campaign();

  FaultPlan plan;
  plan.name = "seeded";
  plan.seed = 21;
  plan.rules.push_back(fault::drop_rule(0.1, 5));
  plan.rules.push_back(
      fault::crash_rule(ProcessId(0), /*at=*/368, /*restart_at=*/369,
                        /*lossy=*/true));
  plan.rules.push_back(fault::delay_rule(2, 0.3));

  auto outcome = chaos::run_once(*protocol, plan, cfg);
  ASSERT_EQ(outcome.violation, ViolationClass::kLiveness) << outcome.detail;

  auto shrunk = chaos::shrink_plan(*protocol, plan, outcome.violation, cfg);
  EXPECT_GT(shrunk.steps, 0u);
  ASSERT_EQ(shrunk.plan.rules.size(), 1u)
      << "noise rules must be shrunk away";
  EXPECT_EQ(shrunk.plan.rules[0].kind, FaultRule::Kind::kCrash);
  EXPECT_EQ(shrunk.plan.name, "seeded-min");

  // The minimized plan still reproduces the same violation class.
  auto confirm = chaos::run_once(*protocol, shrunk.plan, cfg);
  EXPECT_EQ(confirm.violation, ViolationClass::kLiveness) << confirm.detail;
}

// --- the committed counterexample fixture ----------------------------------

std::string fixture_path() {
  return std::string(DISCS_TEST_DATA_DIR) + "/chaos_cops_wipe.repro.json";
}

TEST(ReproFixture, MinimizedCounterexampleStillReproduces) {
  std::ifstream in(fixture_path());
  ASSERT_TRUE(in.good()) << "missing fixture " << fixture_path();
  std::ostringstream text;
  text << in.rdbuf();
  ReproSpec spec = ReproSpec::parse(text.str());
  EXPECT_EQ(spec.protocol, "cops");
  EXPECT_EQ(spec.expected, ViolationClass::kLiveness);
  ASSERT_EQ(spec.plan.rules.size(), 1u) << "fixture should be minimized";
  EXPECT_EQ(spec.plan.rules[0].kind, FaultRule::Kind::kCrash);

  auto outcome = chaos::run_repro(spec);
  EXPECT_EQ(outcome.violation, spec.expected)
      << "the pinned known-bad configuration stopped reproducing: "
      << outcome.detail;
}

TEST(ReproFixture, ViolationAttachesFlightTail) {
  std::ifstream in(fixture_path());
  ASSERT_TRUE(in.good()) << "missing fixture " << fixture_path();
  std::ostringstream text;
  text << in.rdbuf();
  ReproSpec spec = ReproSpec::parse(text.str());
  // The committed fixture predates the flight recorder — and still parses.
  EXPECT_TRUE(spec.flight.empty());

  // Re-running it records the trace tail at the violation (default
  // CampaignConfig::flight_capacity), seq-ordered and bounded.
  auto outcome = chaos::run_repro(spec);
  ASSERT_EQ(outcome.violation, spec.expected) << outcome.detail;
  ASSERT_FALSE(outcome.flight.empty());
  EXPECT_LE(outcome.flight.size(), CampaignConfig{}.flight_capacity);
  for (std::size_t i = 1; i < outcome.flight.size(); ++i)
    EXPECT_LT(outcome.flight[i - 1].seq, outcome.flight[i].seq);
  // A refreshed spec carries the tail through serialization.
  Counterexample cex;
  cex.minimized = spec.plan;
  cex.cls = outcome.violation;
  cex.flight = outcome.flight;
  CampaignConfig cfg;
  cfg.cluster = spec.cluster;
  cfg.workload = spec.workload;
  auto proto = proto::protocol_by_name(spec.protocol);
  ReproSpec refreshed = chaos::make_repro(*proto, cex, cfg);
  ReproSpec back = ReproSpec::parse(refreshed.dump());
  EXPECT_EQ(back.flight, outcome.flight);
}

TEST(ReproFixture, DurableJournalFixesTheCounterexample) {
  std::ifstream in(fixture_path());
  ASSERT_TRUE(in.good()) << "missing fixture " << fixture_path();
  std::ostringstream text;
  text << in.rdbuf();
  ReproSpec spec = ReproSpec::parse(text.str());

  // Same protocol, same workload, same minimized fault plan — but with the
  // journal on, recovery replays the committed writes and the violation
  // disappears.  This is the tentpole's before/after in one assertion.
  spec.cluster.durable_journal = true;
  auto outcome = chaos::run_repro(spec);
  EXPECT_EQ(outcome.violation, ViolationClass::kNone) << outcome.detail;
}

}  // namespace
}  // namespace discs
