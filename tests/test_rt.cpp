// Real-threads runtime backend tests (src/rt).
//
// The load-bearing property is *oracle agreement*: an rt run captured as a
// TraceDoc must replay byte-for-byte on the single-threaded simulator —
// same events, same history, same final digest — for every registry
// protocol.  Everything the repo already knows how to check (consistency
// checkers, SpanDag re-audit of Table 1) then applies to real-thread
// executions for free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "consistency/checkers.h"
#include "impossibility/properties.h"
#include "obs/flight.h"
#include "obs/metrics_io.h"
#include "obs/registry.h"
#include "obs/span_dag.h"
#include "obs/trace_io.h"
#include "par/parallel.h"
#include "par/pool.h"
#include "proto/common/client.h"
#include "proto/registry.h"
#include "rt/clock.h"
#include "rt/mpsc.h"
#include "rt/runtime.h"
#include "sim/simulation.h"

namespace discs {
namespace {

using cons::Verdict;

// --- MPSC inbox ------------------------------------------------------------

struct Tag : sim::Payload {
  explicit Tag(std::uint64_t v) : value(v) {}
  std::uint64_t value;
  std::string describe() const override {
    return "Tag(" + std::to_string(value) + ")";
  }
};

sim::Message tagged(std::size_t producer, std::uint64_t n) {
  sim::Message m;
  m.id = sim::make_msg_id(ProcessId(producer), n);
  m.src = ProcessId(producer);
  m.dst = ProcessId(99);
  m.payload = sim::make_payload<Tag>(n);
  return m;
}

TEST(MpscInbox, ConcurrentProducersSingleDrainer) {
  constexpr std::size_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  // Small capacity so producers actually hit the backpressure path.
  rt::MpscInbox inbox(64);
  std::atomic<std::uint64_t> ticket{0};

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (std::uint64_t n = 0; n < kPerProducer; ++n)
        ASSERT_TRUE(inbox.push(tagged(p, n), ticket.fetch_add(1)));
    });

  // Concurrent drain: tickets must come out globally sorted per batch and
  // each producer's messages in send order across batches.
  sim::MessageVec got;
  std::vector<std::uint64_t> tickets;
  while (got.size() < kProducers * kPerProducer) {
    std::size_t before = tickets.size();
    inbox.drain(got, &tickets);
    for (std::size_t i = before + 1; i < tickets.size(); ++i)
      ASSERT_LT(tickets[i - 1], tickets[i]);
    std::this_thread::yield();
  }
  for (auto& t : producers) t.join();
  ASSERT_TRUE(inbox.empty());
  EXPECT_EQ(inbox.approx_size(), 0u);

  std::vector<std::uint64_t> next(kProducers, 0);
  for (const auto& m : got) {
    std::size_t p = m.src.value();
    const auto* tag = m.as<Tag>();
    ASSERT_NE(tag, nullptr);
    EXPECT_EQ(tag->value, next[p]) << "producer " << p << " reordered";
    ++next[p];
  }
  for (std::size_t p = 0; p < kProducers; ++p)
    EXPECT_EQ(next[p], kPerProducer);
}

TEST(MpscInbox, CloseInterleavedWithPushes) {
  rt::MpscInbox inbox(1024);
  std::atomic<std::uint64_t> ticket{0};
  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < 3; ++p)
    producers.emplace_back([&, p] {
      for (std::uint64_t n = 0; n < 2000; ++n) {
        if (inbox.push(tagged(p, n), ticket.fetch_add(1)))
          accepted.fetch_add(1);
        else
          break;  // closed: every later push would fail too
      }
    });
  sim::MessageVec got;
  std::size_t drained = inbox.drain(got);
  inbox.close();
  for (auto& t : producers) t.join();
  EXPECT_TRUE(inbox.closed());
  EXPECT_FALSE(inbox.push(tagged(0, 9999), ticket.fetch_add(1)));
  // Every accepted message is drainable; none is lost, none duplicated.
  drained += inbox.drain(got);
  EXPECT_EQ(drained, accepted.load());
  EXPECT_EQ(got.size(), accepted.load());
}

// --- shared worker pool ----------------------------------------------------

TEST(ThreadPool, ParallelForFoldsRegistryIntoCaller) {
  const std::uint64_t before = obs::Registry::global().value("test.pool.hits");
  std::atomic<std::uint64_t> sum{0};
  par::parallel_for(1000, [&](std::size_t i) {
    obs::Registry::global().inc("test.pool.hits");
    sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 1000u * 999u / 2);
  // Worker-thread shards were absorbed into this thread's registry at the
  // join — the persistent pool keeps its threads (and their cached counter
  // references) across calls, so run it twice to cover reuse.
  EXPECT_EQ(obs::Registry::global().value("test.pool.hits"), before + 1000);
  par::parallel_for(500, [&](std::size_t) {
    obs::Registry::global().inc("test.pool.hits");
  });
  EXPECT_EQ(obs::Registry::global().value("test.pool.hits"), before + 1500);
}

TEST(ThreadPool, PropagatesJobErrors) {
  EXPECT_THROW(
      par::parallel_for(64,
                        [&](std::size_t i) {
                          if (i == 33) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

// --- backend agreement with the simulator oracle ---------------------------

rt::RunReport run_rt(const proto::Protocol& protocol, std::size_t workers,
                     std::size_t num_txs, std::size_t num_clients = 3,
                     std::uint64_t seed = 11) {
  proto::ClusterConfig ccfg;
  ccfg.num_servers = 3;
  ccfg.num_clients = num_clients;
  ccfg.num_objects = 6;
  wl::WorkloadConfig wcfg;
  wcfg.num_txs = num_txs;
  wcfg.write_fraction = 0.3;
  wcfg.read_objects = 2;
  wcfg.seed = seed;
  rt::Options opts;
  opts.workers = workers;
  return rt::run(protocol, ccfg, wcfg, opts);
}

bool is_strawman(const std::string& name) {
  return name == "naivefast" || name == "stubborn";
}

TEST(RtBackend, AgreesWithSimulatorOracleForEveryProtocol) {
  for (const auto& protocol : proto::all_protocols()) {
    SCOPED_TRACE(protocol->name());
    rt::RunReport rep = run_rt(*protocol, /*workers=*/2, /*num_txs=*/21);
    ASSERT_FALSE(rep.timed_out);
    EXPECT_EQ(rep.txs_completed, 21u);
    EXPECT_EQ(rep.txs_incomplete, 0u);
    EXPECT_EQ(rep.latency_us.count(), 21u);
    EXPECT_GE(rep.events, 21u);

    // The captured artifact replays byte-for-byte on the simulator.
    obs::DocReplay replay = obs::replay_doc(rep.doc, *protocol);
    ASSERT_TRUE(replay.ok) << replay.error;
    EXPECT_TRUE(replay.digest_match);
    EXPECT_EQ(obs::export_jsonl(replay.reexport), obs::export_jsonl(rep.doc));

    // The replayed history equals the live one and passes the checkers.
    EXPECT_EQ(replay.history.describe(), rep.doc.history.describe());
    EXPECT_NE(cons::check_reads_valid(rep.doc.history).verdict,
              Verdict::kViolation);
    if (is_strawman(protocol->name())) continue;
    // Under a genuinely concurrent schedule the strawmen may violate
    // their nominal level (that is their point); correct protocols must
    // hold their claim.
    const std::string claim = protocol->consistency_claim();
    cons::CheckResult claimed;
    if (claim.find("strict") != std::string::npos)
      claimed = cons::check_strict_serializability(rep.doc.history);
    else if (claim.find("read-atomic") != std::string::npos)
      claimed = cons::check_read_atomicity(rep.doc.history);
    else
      claimed = cons::check_causal_consistency(rep.doc.history);
    EXPECT_NE(claimed.verdict, Verdict::kViolation)
        << (claimed.violations.empty() ? ""
                                       : claimed.violations.front().detail);
  }
}

TEST(RtBackend, CaptureOffStillCompletes) {
  auto protocol = proto::protocol_by_name("cops");
  proto::ClusterConfig ccfg;
  ccfg.num_servers = 3;
  ccfg.num_clients = 2;
  ccfg.num_objects = 4;
  wl::WorkloadConfig wcfg;
  wcfg.num_txs = 10;
  wcfg.seed = 5;
  rt::Options opts;
  opts.workers = 2;
  opts.capture = false;
  rt::RunReport rep = rt::run(*protocol, ccfg, wcfg, opts);
  EXPECT_FALSE(rep.timed_out);
  EXPECT_EQ(rep.txs_completed, 10u);
  EXPECT_TRUE(rep.doc.events.empty());
  EXPECT_GT(rep.events, 0u);
}

// --- SpanDag Table-1 re-audit over rt-captured traces ----------------------
//
// Span recording is thread-local, so rt captures run without it; the
// captured doc is then replayed on the main thread *with* spans (spans are
// digest- and behavior-invariant), and the re-captured document must
// profile identically to a live audit of the replayed trace — the same
// field-for-field pin tests/test_profiler.cpp establishes for simulator
// captures.

TEST(RtBackend, SpanDagReauditMatchesLiveAuditForEveryProtocol) {
  std::size_t audited = 0;
  for (const auto& protocol : proto::all_protocols()) {
    SCOPED_TRACE(protocol->name());
    // One client so transaction windows do not overlap.
    rt::RunReport rep =
        run_rt(*protocol, /*workers=*/2, /*num_txs=*/12, /*num_clients=*/1,
               /*seed=*/3);
    ASSERT_FALSE(rep.timed_out);
    ASSERT_EQ(rep.txs_incomplete, 0u);

    obs::TraceDoc sdoc = rep.doc;
    sdoc.cluster.record_spans = true;

    // Manual main-thread replay with span recording on.
    sim::Simulation sim;
    proto::IdSource ids;
    proto::Cluster cluster = protocol->build(sim, sdoc.cluster, ids);
    std::size_t next_invoke = 0;
    auto run_invokes = [&] {
      while (next_invoke < sdoc.invokes.size() &&
             sdoc.invokes[next_invoke].at <= sim.now()) {
        const obs::InvokeRecord& inv = sdoc.invokes[next_invoke++];
        sim.process_as<proto::ClientBase>(inv.client).invoke(inv.spec);
      }
    };
    for (const auto& e : sdoc.events) {
      run_invokes();
      ASSERT_TRUE(sim.apply(e.event)) << e.event.describe();
    }
    run_invokes();
    // Spans change nothing observable: the replay still lands on the
    // digest the rt run captured without them.
    EXPECT_EQ(sim.digest(), rep.doc.final_digest);

    obs::TraceDoc spanned =
        obs::make_doc(*protocol, sdoc.scenario, sdoc.cluster, sim, cluster,
                      sdoc.invokes);
    obs::SpanDag dag(spanned);
    const hist::History replayed = proto::collect_history(
        sim, cluster.clients, cluster.initial_values);
    for (const auto& tx : replayed.txs()) {
      if (!tx.read_only() || !tx.completed) continue;
      imposs::RotAudit live =
          imposs::audit_rot(sim.trace(), tx.invoke_seq, tx.complete_seq + 1,
                            tx.id, tx.client, cluster.view);
      obs::RotProfile offline = dag.profile(tx.id);
      SCOPED_TRACE(to_string(tx.id));
      EXPECT_EQ(offline.rounds, live.rounds);
      EXPECT_EQ(offline.one_round, live.one_round);
      EXPECT_EQ(offline.nonblocking, live.nonblocking);
      EXPECT_EQ(offline.deferred_replies, live.deferred_replies);
      EXPECT_EQ(offline.max_values_per_message, live.max_values_per_message);
      EXPECT_EQ(offline.max_values_per_object_per_message,
                live.max_values_per_object_per_message);
      EXPECT_EQ(offline.max_values_per_object, live.max_values_per_object);
      EXPECT_EQ(offline.leaked_foreign_values, live.leaked_foreign_values);
      EXPECT_EQ(offline.single_server_per_object,
                live.single_server_per_object);
      EXPECT_EQ(offline.one_value, live.one_value);
      EXPECT_EQ(offline.reply_bytes, live.reply_bytes);
      ++audited;
    }
  }
  // The sweep exercised real ROTs across the registry.
  EXPECT_GE(audited, 5u * proto::all_protocols().size());
}

// --- wall-clock retransmits ------------------------------------------------

TEST(RtBackend, WallClockRetransmitRecoversDroppedRequest) {
  auto protocol = proto::protocol_by_name("cops");
  proto::ClusterConfig ccfg;
  ccfg.num_servers = 3;
  ccfg.num_clients = 1;
  ccfg.num_objects = 4;
  ccfg.exactly_once = true;  // retransmits are dup-safe
  ccfg.client_retransmit_after = 2;
  wl::WorkloadConfig wcfg;
  wcfg.num_txs = 6;
  wcfg.seed = 9;

  rt::FakeClock clock;
  std::atomic<bool> dropped_once{false};
  rt::Options opts;
  opts.workers = 2;
  opts.clock = &clock;
  opts.drop_filter = [&](const sim::Message& m) {
    // Drop the first client-originated request, exactly once.
    if (m.src.value() < ccfg.num_servers) return false;
    bool expected = false;
    return dropped_once.compare_exchange_strong(expected, true);
  };

  const std::uint64_t rtx_before =
      obs::Registry::global().value("client.retransmits");
  rt::RunReport rep = rt::run(*protocol, ccfg, wcfg, opts);
  ASSERT_FALSE(rep.timed_out);
  EXPECT_EQ(rep.txs_completed, 6u);
  EXPECT_EQ(rep.drops, 1u);
  EXPECT_TRUE(dropped_once.load());
  // The ladder fired off fake wall-clock periods, not simulator steps.
  EXPECT_GE(obs::Registry::global().value("client.retransmits"), rtx_before + 1);
  // The drop is a first-class v2 event and the run replays byte-exactly —
  // including the rearmed ladder, whose base travels in the header.
  EXPECT_EQ(rep.doc.schema, obs::kTraceSchemaV2);
  obs::DocReplay replay = obs::replay_doc(rep.doc, *protocol);
  ASSERT_TRUE(replay.ok) << replay.error;
  EXPECT_EQ(obs::export_jsonl(replay.reexport), obs::export_jsonl(rep.doc));
}

TEST(RtBackend, FakeClockAutoAdvances) {
  rt::FakeClock clock(100);
  EXPECT_EQ(clock.now_us(), 100u);
  clock.on_wait_until(500);
  EXPECT_EQ(clock.now_us(), 500u);
  clock.on_wait_until(200);  // never moves backwards
  EXPECT_EQ(clock.now_us(), 500u);
  clock.advance(50);
  EXPECT_EQ(clock.now_us(), 550u);
  EXPECT_FALSE(clock.real_time());
}

// --- streaming trace export ------------------------------------------------

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

rt::RunReport run_rt_streamed(const proto::Protocol& protocol,
                              std::size_t workers, bool capture,
                              const std::string& path) {
  proto::ClusterConfig ccfg;
  ccfg.num_servers = 3;
  ccfg.num_clients = 3;
  ccfg.num_objects = 6;
  wl::WorkloadConfig wcfg;
  wcfg.num_txs = 15;
  wcfg.write_fraction = 0.3;
  wcfg.read_objects = 2;
  wcfg.seed = 11;
  rt::Options opts;
  opts.workers = workers;
  opts.capture = capture;
  opts.stream_path = path;
  return rt::run(protocol, ccfg, wcfg, opts);
}

TEST(RtStreaming, StreamedBytesMatchFinalizeExportForEveryProtocol) {
  for (const auto& protocol : proto::all_protocols()) {
    for (std::size_t workers : {1u, 8u}) {
      SCOPED_TRACE(protocol->name() + "/w" + std::to_string(workers));
      std::string path = testing::TempDir() + "rt_stream_" +
                         protocol->name() + "_w" + std::to_string(workers) +
                         ".jsonl";
      rt::RunReport rep =
          run_rt_streamed(*protocol, workers, /*capture=*/true, path);
      ASSERT_FALSE(rep.timed_out);
      ASSERT_EQ(rep.txs_incomplete, 0u);
      // The live merge produced byte-for-byte the canonical finalize
      // export of the same run — the streaming tentpole guarantee.
      EXPECT_EQ(slurp(path), obs::export_jsonl(rep.doc));
      // The spool is consumed into the artifact.
      EXPECT_FALSE(std::ifstream(path + ".spool").is_open());
      std::remove(path.c_str());
    }
  }
}

TEST(RtStreaming, CaptureOffStreamedArtifactReplaysOnOracle) {
  for (const auto& protocol : proto::all_protocols()) {
    for (std::size_t workers : {1u, 8u}) {
      SCOPED_TRACE(protocol->name() + "/w" + std::to_string(workers));
      std::string path = testing::TempDir() + "rt_stream_nocap_" +
                         protocol->name() + "_w" + std::to_string(workers) +
                         ".jsonl";
      rt::RunReport rep =
          run_rt_streamed(*protocol, workers, /*capture=*/false, path);
      ASSERT_FALSE(rep.timed_out);
      ASSERT_EQ(rep.txs_incomplete, 0u);
      // Capture off: no in-memory doc, yet the streamed file is the run's
      // full record...
      EXPECT_TRUE(rep.doc.events.empty());
      obs::TraceDoc doc = obs::import_jsonl(slurp(path));
      EXPECT_EQ(doc.events.size(), rep.events);
      // ...that re-executes byte-for-byte on the simulator oracle.
      obs::DocReplay replay = obs::replay_doc(doc, *protocol);
      ASSERT_TRUE(replay.ok) << replay.error;
      EXPECT_TRUE(replay.digest_match);
      EXPECT_EQ(obs::export_jsonl(replay.reexport), obs::export_jsonl(doc));
      std::remove(path.c_str());
    }
  }
}

// --- metrics timelines -----------------------------------------------------

TEST(RtMetrics, FakeClockCadenceSamplesAndFileMatchesSeries) {
  auto protocol = proto::protocol_by_name("cops");
  proto::ClusterConfig ccfg;
  ccfg.num_servers = 3;
  ccfg.num_clients = 2;
  ccfg.num_objects = 4;
  wl::WorkloadConfig wcfg;
  wcfg.num_txs = 12;
  wcfg.seed = 5;
  rt::FakeClock clock;
  rt::Options opts;
  opts.workers = 2;
  opts.clock = &clock;
  opts.metrics_interval_us = 1000;
  opts.metrics_path = testing::TempDir() + "rt_metrics.jsonl";
  rt::RunReport rep = rt::run(*protocol, ccfg, wcfg, opts);
  ASSERT_FALSE(rep.timed_out);
  EXPECT_EQ(rep.txs_completed, 12u);

  // At least the final post-join sample exists and reflects the full run.
  ASSERT_GE(rep.metrics.samples.size(), 1u);
  EXPECT_EQ(rep.metrics.source, "rt:cops:w2");
  const obs::MetricsSample& last = rep.metrics.samples.back();
  EXPECT_GE(last.counters.at("rt.steps"), 1u);
  EXPECT_GE(last.counters.at("client.tx.completed"), 12u);
  // Hot families carry per-engine-thread shard breakdowns that sum to the
  // aggregate.
  ASSERT_TRUE(last.shards.count("rt.steps"));
  std::uint64_t sum = 0;
  for (auto v : last.shards.at("rt.steps")) sum += v;
  EXPECT_EQ(sum, last.counters.at("rt.steps"));

  // The live-appended file carries exactly the series the report carries.
  EXPECT_EQ(slurp(opts.metrics_path),
            obs::export_metrics_jsonl(rep.metrics));
  obs::MetricsSeries back =
      obs::import_metrics_jsonl(slurp(opts.metrics_path));
  EXPECT_EQ(back, rep.metrics);
  std::remove(opts.metrics_path.c_str());
}

TEST(RtMetrics, RealClockSamplerStressStaysConsistent) {
  // TSan coverage for the hub: 8 workers folding at high cadence while the
  // sampler aggregates on a 200us period.  The assertion is consistency of
  // the final sample; the sanitizer job asserts the absence of races.
  auto protocol = proto::protocol_by_name("cops");
  proto::ClusterConfig ccfg;
  ccfg.num_servers = 8;
  ccfg.num_clients = 3;
  ccfg.num_objects = 8;
  wl::WorkloadConfig wcfg;
  wcfg.num_txs = 60;
  wcfg.seed = 17;
  rt::Options opts;
  opts.workers = 8;
  opts.capture = false;
  opts.metrics_interval_us = 200;
  rt::RunReport rep = rt::run(*protocol, ccfg, wcfg, opts);
  ASSERT_FALSE(rep.timed_out);
  EXPECT_EQ(rep.txs_completed, 60u);
  ASSERT_GE(rep.metrics.samples.size(), 1u);
  for (std::size_t i = 1; i < rep.metrics.samples.size(); ++i) {
    const auto& prev = rep.metrics.samples[i - 1];
    const auto& cur = rep.metrics.samples[i];
    EXPECT_GE(cur.at_us, prev.at_us);
    // Counters are monotone across samples: folds are full snapshots, so
    // a torn or double-counted aggregate would show up as a regression.
    for (const auto& [name, v] : prev.counters) {
      auto it = cur.counters.find(name);
      ASSERT_NE(it, cur.counters.end()) << name;
      EXPECT_GE(it->second, v) << name;
    }
  }
  EXPECT_GE(rep.metrics.samples.back().counters.at("rt.steps"), 1u);
}

// --- flight recorder -------------------------------------------------------

TEST(RtFlight, RingsRetainTheMostRecentEventsSortedBySeq) {
  auto protocol = proto::protocol_by_name("cops");
  proto::ClusterConfig ccfg;
  ccfg.num_servers = 3;
  ccfg.num_clients = 2;
  ccfg.num_objects = 4;
  wl::WorkloadConfig wcfg;
  wcfg.num_txs = 10;
  wcfg.seed = 7;
  rt::Options opts;
  opts.workers = 2;
  opts.capture = false;
  opts.flight_capacity = 16;
  rt::RunReport rep = rt::run(*protocol, ccfg, wcfg, opts);
  ASSERT_FALSE(rep.timed_out);
  ASSERT_FALSE(rep.flight.empty());
  // Bounded by (workers + submitters) rings of 16.
  EXPECT_LE(rep.flight.size(), 16u * rep.threads_used);
  for (std::size_t i = 1; i < rep.flight.size(); ++i)
    EXPECT_LT(rep.flight[i - 1].seq, rep.flight[i].seq);
  // Every remembered event is a real, compactable kind.
  for (const auto& e : rep.flight)
    EXPECT_TRUE(e.kind == "step" || e.kind == "deliver" || e.kind == "drop")
        << e.kind;
  // The dump serializes like any discs artifact.
  std::string dump = obs::export_flight_jsonl(rep.flight, "test");
  EXPECT_NE(dump.find("discs.flight.v1"), std::string::npos);
}

}  // namespace
}  // namespace discs
