// Tests of the auditor, the visibility oracle and the constructions across
// the whole registry — the glue that regenerates Table 1.
#include <gtest/gtest.h>

#include "impossibility/auditor.h"
#include "impossibility/constructions.h"
#include "proto/common/client.h"
#include "proto/registry.h"
#include "sim/schedule.h"

namespace discs {
namespace {

using imposs::AuditConfig;
using proto::ClientBase;
using proto::Cluster;
using proto::ClusterConfig;
using proto::IdSource;
using proto::TxSpec;

ClusterConfig small_cluster() {
  ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.num_clients = 4;
  cfg.num_objects = 2;
  return cfg;
}

TEST(Auditor, Table1RowsMatchThePaper) {
  struct Expected {
    const char* name;
    std::size_t r;
    std::size_t v;
    bool n;
    bool wtx;
  };
  // The paper's Table 1 cells for the systems we implement.
  const Expected expected[] = {
      {"cops", 2, 2, true, false},      {"gentlerain", 2, 1, false, false},
      {"cops-snow", 1, 1, true, false}, {"ramp", 2, 2, true, true},
      {"eiger", 3, 2, true, true},      {"wren", 2, 1, true, true},
      {"spanner", 1, 1, false, true},
  };
  for (const auto& e : expected) {
    auto protocol = proto::protocol_by_name(e.name);
    AuditConfig cfg;
    cfg.workload_txs = 30;
    cfg.run_induction = false;
    auto audit = imposs::audit_protocol(*protocol, cfg);
    EXPECT_LE(audit.max_rounds, e.r) << e.name << ": " << audit.row_str();
    EXPECT_LE(audit.max_values_per_object, e.v)
        << e.name << ": " << audit.row_str();
    EXPECT_EQ(audit.nonblocking, e.n) << e.name << ": " << audit.row_str();
    EXPECT_EQ(audit.accepts_write_tx, e.wtx)
        << e.name << ": " << audit.row_str();
    if (e.name != std::string("ramp")) {
      EXPECT_EQ(audit.causal_verdict, cons::Verdict::kOk)
          << e.name << ": " << audit.causal_detail;
    }
  }
}

TEST(Auditor, FatCopsViolatesOneValueOnly) {
  auto protocol = proto::protocol_by_name("fatcops");
  AuditConfig cfg;
  cfg.run_induction = false;
  auto audit = imposs::audit_protocol(*protocol, cfg);
  EXPECT_EQ(audit.max_rounds, 1u);
  EXPECT_TRUE(audit.nonblocking);
  EXPECT_TRUE(audit.accepts_write_tx);
  EXPECT_GT(audit.max_values_per_object, 1u);
  EXPECT_EQ(audit.causal_verdict, cons::Verdict::kOk) << audit.causal_detail;
}

TEST(Auditor, TheoremPartitionIsExhaustive) {
  // Every protocol falls into exactly one bucket of the theorem's
  // partition — no protocol is simultaneously fast, write-transactional,
  // causal and live.
  for (const auto& protocol : proto::all_protocols()) {
    AuditConfig cfg;
    cfg.workload_txs = 20;
    auto audit = imposs::audit_protocol(*protocol, cfg);
    bool fast = audit.max_rounds <= 1 && audit.max_values_per_object <= 1 &&
                audit.nonblocking;
    bool w = audit.accepts_write_tx;
    bool causal_ok = audit.causal_verdict == cons::Verdict::kOk;
    bool progress =
        audit.induction.outcome !=
            imposs::InductionReport::Outcome::kTroublesomeExecution &&
        audit.induction.outcome !=
            imposs::InductionReport::Outcome::kNoProgressNoComm;
    EXPECT_FALSE(fast && w && causal_ok && progress)
        << protocol->name() << " would refute Theorem 1: "
        << audit.row_str();
  }
}

class GammaAcrossFastProtocols
    : public ::testing::TestWithParam<std::string> {};

TEST_P(GammaAcrossFastProtocols, GammaOldAndNewReturnConsistentSnapshots) {
  auto protocol = proto::protocol_by_name(GetParam());
  sim::Simulation sim;
  IdSource ids;
  Cluster cluster = protocol->build(sim, small_cluster(), ids);

  auto g_old = imposs::run_gamma_old(sim, *protocol, cluster,
                                     cluster.view.servers[1], ids);
  ASSERT_TRUE(g_old.ok && g_old.completed) << g_old.note;
  for (const auto& [obj, v] : cluster.initial_values)
    EXPECT_EQ(g_old.returned[obj], v);

  // Single-object write (supported everywhere), then gamma_new.
  ProcessId cw = cluster.clients[0];
  TxSpec w = ids.write_one(cluster.view.objects[0]);
  sim.process_as<ClientBase>(cw).invoke(w);
  sim::run_fair(sim, {},
                [&](const sim::Simulation& s) {
                  return s.process_as<const ClientBase>(cw).has_completed(
                      w.id);
                },
                30000);
  sim::run_to_quiescence(sim, {}, 10000);

  auto g_new = imposs::run_gamma_new(sim, *protocol, cluster,
                                     cluster.view.servers[0], ids);
  ASSERT_TRUE(g_new.ok && g_new.completed) << g_new.note;
  EXPECT_EQ(g_new.returned[cluster.view.objects[0]], w.write_set[0].second);
}

TEST_P(GammaAcrossFastProtocols, Observation1Indistinguishability) {
  // Observation 1(2): only the reader and the first-responding servers
  // take steps in sigma_old, so every OTHER process's state is unchanged —
  // machine-checked on state digests.
  auto protocol = proto::protocol_by_name(GetParam());
  sim::Simulation sim;
  IdSource ids;
  Cluster cluster = protocol->build(sim, small_cluster(), ids);
  ProcessId cw = cluster.clients[0];
  ProcessId p = cluster.view.servers[1];

  std::string cw_before = sim.process_digest(cw);
  std::string p_before = sim.process_digest(p);
  auto run = imposs::run_gamma_old(sim, *protocol, cluster, p, ids);
  ASSERT_TRUE(run.ok) << run.note;
  // cw took no steps in the whole of gamma_old; p took none within
  // sigma_old.  After the full run p has answered, but cw is untouched.
  EXPECT_EQ(run.sim.process_digest(cw), cw_before);
  // Replay only sigma_old onto a fresh copy: p must be unchanged there.
  sim::Simulation upto_sigma = sim;
  ProcessId reader2 = protocol->add_client(upto_sigma, cluster.view);
  (void)reader2;
  EXPECT_EQ(upto_sigma.process_digest(p), p_before);
}

INSTANTIATE_TEST_SUITE_P(Registry, GammaAcrossFastProtocols,
                         ::testing::Values("naivefast", "cops-snow", "cops",
                                           "fatcops"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(Visibility, ProbeDoesNotPerturbTheConfiguration) {
  auto protocol = proto::protocol_by_name("cops-snow");
  sim::Simulation sim;
  IdSource ids;
  Cluster cluster = protocol->build(sim, small_cluster(), ids);
  std::string digest_before = sim.digest();
  auto probe = imposs::probe_visibility(sim, *protocol, cluster,
                                        cluster.initial_values, ids);
  EXPECT_TRUE(probe.visible);
  EXPECT_EQ(sim.digest(), digest_before);
}

TEST(Visibility, ReportsFastnessOfTheProbeItself) {
  auto fast = proto::protocol_by_name("cops-snow");
  sim::Simulation s1;
  IdSource ids1;
  Cluster c1 = fast->build(s1, small_cluster(), ids1);
  auto p1 = imposs::probe_visibility(s1, *fast, c1, c1.initial_values, ids1);
  EXPECT_TRUE(p1.probe_was_fast) << p1.probe_audit_summary;

  auto slow = proto::protocol_by_name("wren");
  sim::Simulation s2;
  IdSource ids2;
  Cluster c2 = slow->build(s2, small_cluster(), ids2);
  auto p2 = imposs::probe_visibility(s2, *slow, c2, c2.initial_values, ids2);
  EXPECT_TRUE(p2.visible);
  EXPECT_FALSE(p2.probe_was_fast) << p2.probe_audit_summary;
}

}  // namespace
}  // namespace discs
