// Schedule-fuzzing property tests: every correct protocol must keep its
// consistency guarantee under randomized adversarial schedules, across
// many seeds, cluster shapes and workload mixes.  Each seed is fully
// deterministic, so any failure reproduces from the printed parameters.
#include <gtest/gtest.h>

#include <atomic>

#include "consistency/checkers.h"
#include "fault/plan.h"
#include "fault/session.h"
#include "par/parallel.h"
#include "proto/registry.h"
#include "workload/workload.h"

namespace discs {
namespace {

using proto::Cluster;
using proto::ClusterConfig;
using proto::IdSource;

struct FuzzCase {
  std::string protocol;
  std::uint64_t seed;
};

void PrintTo(const FuzzCase& c, std::ostream* os) {
  *os << c.protocol << "/seed" << c.seed;
}

class FuzzCausal : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzCausal, ConcurrentRandomScheduleKeepsGuarantee) {
  const auto& param = GetParam();
  auto protocol = proto::protocol_by_name(param.protocol);

  sim::Simulation sim;
  IdSource ids;
  ClusterConfig cfg;
  cfg.num_servers = 3;
  cfg.num_clients = 5;
  cfg.num_objects = 6;
  Cluster cluster = protocol->build(sim, cfg, ids);

  wl::WorkloadConfig wcfg;
  wcfg.num_txs = 40;
  wcfg.seed = param.seed;
  wcfg.write_fraction = 0.45;
  wcfg.zipf_theta = 0.8;  // contended keys stress the mechanisms
  auto result =
      wl::run_workload_concurrent(sim, *protocol, cluster, ids, wcfg);
  EXPECT_EQ(result.incomplete, 0u) << "stuck transactions";

  if (param.protocol == "ramp") {
    auto ra = cons::check_read_atomicity(result.history);
    EXPECT_TRUE(ra.ok()) << ra.summary();
    return;
  }
  auto causal = cons::check_causal_consistency(result.history);
  EXPECT_TRUE(causal.ok()) << causal.summary();
  auto sessions = cons::check_session_guarantees(result.history);
  EXPECT_TRUE(sessions.ok()) << sessions.summary();
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (const std::string name : {"cops", "cops-snow", "gentlerain", "wren",
                                 "fatcops", "eiger", "spanner", "ramp"})
    for (std::uint64_t seed : {11u, 22u, 33u, 44u, 55u, 66u})
      cases.push_back({name, seed});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuzzCausal, ::testing::ValuesIn(fuzz_cases()),
                         [](const auto& info) {
                           std::string n = info.param.protocol;
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n + "_seed" +
                                  std::to_string(info.param.seed);
                         });

TEST(FuzzParallel, ManySeedsAcrossThreads) {
  // The Monte-Carlo harness: a larger seed sweep over the flagship corner
  // protocols, parallelized with the jthread pool.
  std::atomic<int> violations{0};
  std::atomic<int> stuck{0};
  const std::vector<std::string> protos{"cops-snow", "wren", "eiger"};

  par::parallel_for(protos.size() * 12, [&](std::size_t i) {
    auto protocol = proto::protocol_by_name(protos[i % protos.size()]);
    sim::Simulation sim;
    IdSource ids;
    ClusterConfig cfg;
    cfg.num_servers = 2;
    cfg.num_clients = 4;
    cfg.num_objects = 4;
    Cluster cluster = protocol->build(sim, cfg, ids);
    wl::WorkloadConfig wcfg;
    wcfg.num_txs = 30;
    wcfg.seed = 9000 + i;
    wcfg.write_fraction = 0.5;
    auto result =
        wl::run_workload_concurrent(sim, *protocol, cluster, ids, wcfg);
    if (result.incomplete > 0) ++stuck;
    if (!cons::check_causal_consistency(result.history).ok()) ++violations;
  });

  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(stuck.load(), 0);
}

/// A random-but-reproducible fault plan: a lossy link layer (drops with
/// retransmission), extra latency, and reordering jitter, all derived from
/// `seed`.  Duplicates are deliberately excluded — re-delivering a
/// non-idempotent WriteRequest is a different (application-level) failure
/// mode than the network faults this sweep is about.
fault::FaultPlan random_fault_plan(std::uint64_t seed) {
  Rng rng(seed);
  fault::FaultPlan plan;
  plan.name = "fuzz";
  plan.seed = seed;
  plan.rules.push_back(
      fault::drop_rule(0.05 + 0.25 * rng.uniform01(), 3 + rng.below(6)));
  plan.rules.push_back(fault::delay_rule(rng.below(3), 0.5));
  plan.rules.push_back(fault::reorder_rule(0.3, 2 + rng.below(4)));
  return plan;
}

TEST(FuzzFaults, RandomFaultPlansPreserveSafetyGuarantees) {
  // Safety must be schedule-independent, and a faulted schedule is just a
  // nastier schedule: whatever completes under random drops, delays and
  // reordering must still satisfy the protocol's consistency claim.
  std::atomic<int> violations{0};
  std::atomic<int> stuck{0};
  const std::vector<std::string> protos{"cops-snow", "wren", "fatcops"};

  par::parallel_for(protos.size() * 6, [&](std::size_t i) {
    auto protocol = proto::protocol_by_name(protos[i % protos.size()]);
    sim::Simulation sim;
    IdSource ids;
    ClusterConfig cfg;
    cfg.num_servers = 2;
    cfg.num_clients = 4;
    cfg.num_objects = 4;
    Cluster cluster = protocol->build(sim, cfg, ids);
    fault::FaultSession session(random_fault_plan(7000 + i),
                                {cluster.view.servers, cluster.clients});
    wl::WorkloadConfig wcfg;
    wcfg.num_txs = 20;
    wcfg.seed = 7000 + i;
    wcfg.write_fraction = 0.5;
    auto result = wl::run_workload_concurrent_faulted(sim, *protocol, cluster,
                                                      ids, wcfg, session);
    if (result.incomplete > 0) ++stuck;
    if (!cons::check_causal_consistency(result.history).ok()) ++violations;
    if (!cons::check_session_guarantees(result.history).ok()) ++violations;
  });

  EXPECT_EQ(violations.load(), 0);
  // Every drop is retransmitted, so the lossy network is live: stuck
  // transactions would mean the engine lost a message for good.
  EXPECT_EQ(stuck.load(), 0);
}

TEST(FuzzParallel, NaiveFastEventuallyCaughtByFuzzing) {
  // The strawman should not survive a determined seed sweep: at least one
  // random schedule produces a causal violation.
  std::atomic<int> violations{0};
  par::parallel_for(16, [&](std::size_t i) {
    auto protocol = proto::protocol_by_name("naivefast");
    sim::Simulation sim;
    IdSource ids;
    ClusterConfig cfg;
    cfg.num_servers = 2;
    cfg.num_clients = 5;
    cfg.num_objects = 2;
    Cluster cluster = protocol->build(sim, cfg, ids);
    wl::WorkloadConfig wcfg;
    wcfg.num_txs = 40;
    wcfg.seed = 100 + i;
    wcfg.write_fraction = 0.5;
    auto result =
        wl::run_workload_concurrent(sim, *protocol, cluster, ids, wcfg);
    if (!cons::check_causal_consistency(result.history).ok()) ++violations;
  });
  EXPECT_GT(violations.load(), 0)
      << "no random schedule caught naivefast — fuzzing power regressed";
}

}  // namespace
}  // namespace discs
