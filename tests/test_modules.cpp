// Tests for the supporting modules: metrics, parallel runner, payloads.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "metrics/metrics.h"
#include "par/parallel.h"
#include "proto/common/payloads.h"
#include "util/check.h"

namespace discs {
namespace {

TEST(Metrics, SummaryStatistics) {
  metrics::Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min(), 1);
  EXPECT_DOUBLE_EQ(s.max(), 100);
  EXPECT_NEAR(s.p50(), 50.5, 0.01);
  EXPECT_NEAR(s.p95(), 95.05, 0.1);
  EXPECT_NEAR(s.percentile(0.0), 1, 1e-9);
  EXPECT_NEAR(s.percentile(1.0), 100, 1e-9);
}

TEST(Metrics, EmptySummaryIsSafe) {
  // Empty statistics are NaN, not 0: a zero is a measurement that was
  // never taken.
  metrics::Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.p50()));
  EXPECT_FALSE(s.str().empty());
}

TEST(Metrics, InterleavedAddAndQuery) {
  metrics::Summary s;
  s.add(10);
  EXPECT_DOUBLE_EQ(s.max(), 10);
  s.add(20);  // must re-sort after new samples
  EXPECT_DOUBLE_EQ(s.max(), 20);
  s.add(5);
  EXPECT_DOUBLE_EQ(s.min(), 5);
}

TEST(Parallel, RunsEveryJobExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  par::parallel_for(64, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, PropagatesException) {
  EXPECT_THROW(par::parallel_for(8,
                                 [&](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(Parallel, ZeroAndSingle) {
  par::parallel_for(0, [](std::size_t) { FAIL(); });
  int n = 0;
  par::parallel_for(1, [&](std::size_t) { ++n; }, 1);
  EXPECT_EQ(n, 1);
}

TEST(Payloads, ValuesCarriedConventions) {
  proto::RotReply reply;
  reply.items.push_back({ObjectId(0), ValueId(1), {1, 0}, {}, {}});
  reply.items.push_back({ObjectId(1), ValueId(2), {1, 0}, {}, {}});
  reply.extras.push_back({ObjectId(2), ValueId(3), {1, 0}, {}, {}});
  proto::PendingInfo p;
  p.object = ObjectId(0);
  p.value = ValueId(4);
  reply.pendings.push_back(p);
  auto vals = reply.values_carried();
  EXPECT_EQ(vals.size(), 4u);

  // Dependency/sibling REFERENCES are metadata (footnote 3), not values.
  proto::RotReply ref_only;
  proto::ReadItem item{ObjectId(0), ValueId(1), {1, 0}, {}, {}};
  item.deps.push_back({ObjectId(1), ValueId(9), {0, 1}});
  item.siblings.push_back({ObjectId(2), ValueId(8)});
  ref_only.items.push_back(item);
  EXPECT_EQ(ref_only.values_carried().size(), 1u);
}

TEST(Payloads, SnapshotReplyCarriesNoValues) {
  proto::SnapshotReply r;
  r.snapshot = {5, 0};
  EXPECT_TRUE(r.values_carried().empty());
}

TEST(Payloads, ByteSizesGrowWithContent) {
  proto::WriteRequest small;
  small.writes = {{ObjectId(0), ValueId(1)}};
  proto::WriteRequest fat = small;
  for (int i = 0; i < 10; ++i) {
    fat.dep_values.push_back({ObjectId(i), ValueId(100 + i), {1, 0}, {}, {}});
    fat.deps.push_back({ObjectId(i), ValueId(100 + i), {1, 0}});
  }
  EXPECT_GT(fat.byte_size(), small.byte_size() + 10 * 24);
  EXPECT_EQ(fat.values_carried().size(), 1u + 10u);
}

TEST(Payloads, DescribeIsInformative) {
  proto::RotRequest req;
  req.tx = TxId(7);
  req.objects = {ObjectId(0), ObjectId(1)};
  auto d = req.describe();
  EXPECT_NE(d.find("T7"), std::string::npos);
  EXPECT_NE(d.find("X0"), std::string::npos);

  proto::Commit c;
  c.tx = TxId(9);
  c.commit_ts = {4, 2};
  EXPECT_NE(c.describe().find("4.2"), std::string::npos);
}

}  // namespace
}  // namespace discs
