#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "metrics/metrics.h"
#include "util/check.h"
#include "util/fmt.h"
#include "util/ids.h"
#include "util/rng.h"

namespace discs {
namespace {

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<ProcessId, ObjectId>);
  ProcessId p(3);
  EXPECT_EQ(p.value(), 3u);
  EXPECT_TRUE(p.valid());
  EXPECT_FALSE(ProcessId::invalid().valid());
  EXPECT_EQ(to_string(p), "p3");
  EXPECT_EQ(to_string(ProcessId::invalid()), "-");
}

TEST(Ids, OrderingAndHash) {
  EXPECT_LT(TxId(1), TxId(2));
  std::set<TxId> s{TxId(1), TxId(2), TxId(1)};
  EXPECT_EQ(s.size(), 2u);
  std::hash<TxId> h;
  EXPECT_EQ(h(TxId(5)), h(TxId(5)));
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) differs |= (a2.next() != c.next());
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, SplitGivesIndependentStream) {
  Rng a(1);
  Rng child = a.split();
  EXPECT_NE(a.next(), child.next());
}

TEST(Zipf, SkewsTowardsLowIndices) {
  Rng rng(3);
  Zipf z(100, 0.99);
  std::size_t low = 0, total = 20000;
  for (std::size_t i = 0; i < total; ++i)
    if (z.sample(rng) < 10) ++low;
  // With theta=0.99 the top-10 of 100 keys draw well over a third of mass.
  EXPECT_GT(low, total / 3);
}

TEST(Zipf, UniformWhenThetaZero) {
  Rng rng(4);
  Zipf z(10, 0.0);
  std::vector<std::size_t> counts(10, 0);
  for (std::size_t i = 0; i < 20000; ++i) ++counts[z.sample(rng)];
  for (auto c : counts) EXPECT_GT(c, 20000u / 20);
}

TEST(Check, ThrowsCheckFailure) {
  EXPECT_THROW(DISCS_CHECK(false), CheckFailure);
  EXPECT_NO_THROW(DISCS_CHECK(true));
  try {
    DISCS_CHECK_MSG(1 == 2, "math broke: " << 42);
    FAIL();
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("math broke: 42"),
              std::string::npos);
  }
}

TEST(Fmt, CatAndJoin) {
  EXPECT_EQ(cat("a", 1, "b"), "a1b");
  std::vector<int> v{1, 2, 3};
  EXPECT_EQ(join(v, ","), "1,2,3");
  EXPECT_EQ(join(v, "-", [](int x) { return x * 2; }), "2-4-6");
}

TEST(Fmt, AsciiTable) {
  auto t = ascii_table({{"h1", "h2"}, {"a", "bbb"}});
  EXPECT_NE(t.find("| h1 | h2  |"), std::string::npos);
  EXPECT_NE(t.find("| a  | bbb |"), std::string::npos);
}

TEST(Fmt, PadAndFixed) {
  EXPECT_EQ(pad("ab", 4), "ab  ");
  EXPECT_EQ(pad("abcd", 2), "abcd");
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
}

TEST(MetricsSummary, EmptyStatisticsAreNaN) {
  metrics::Summary s;
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  EXPECT_TRUE(std::isnan(s.percentile(0.0)));
  EXPECT_TRUE(std::isnan(s.percentile(0.5)));
  EXPECT_TRUE(std::isnan(s.percentile(1.0)));
  EXPECT_TRUE(std::isnan(s.p50()));
  EXPECT_TRUE(std::isnan(s.p95()));
  EXPECT_TRUE(std::isnan(s.p99()));
}

TEST(MetricsSummary, SingleSampleIsEveryStatistic) {
  metrics::Summary s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 42.0);
}

TEST(MetricsSummary, PercentileClampsOutOfRangeQuantiles) {
  metrics::Summary s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.percentile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.5), 3.0);
}

TEST(MetricsSummary, EmptyStrDoesNotThrow) {
  metrics::Summary s;
  EXPECT_NO_THROW({ auto str = s.str(); });
  EXPECT_NE(s.str().find("n=0"), std::string::npos);
}

}  // namespace
}  // namespace discs
