#include <gtest/gtest.h>

#include "history/history.h"
#include "util/check.h"

namespace discs::hist {
namespace {

TxRecord make_tx(std::uint64_t id, std::uint64_t client,
                 std::vector<std::pair<std::uint64_t, std::uint64_t>> reads,
                 std::vector<std::pair<std::uint64_t, std::uint64_t>> writes,
                 std::uint64_t invoke = 0, std::uint64_t complete = 1) {
  TxRecord t;
  t.id = TxId(id);
  t.client = ProcessId(client);
  t.invoked = t.completed = true;
  t.invoke_seq = invoke;
  t.complete_seq = complete;
  for (auto [o, v] : reads)
    t.reads.push_back({ObjectId(o), ValueId(v), true});
  for (auto [o, v] : writes) t.writes.push_back({ObjectId(o), ValueId(v), true});
  return t;
}

TEST(TxRecord, Accessors) {
  auto t = make_tx(1, 1, {{0, 10}}, {{1, 20}});
  EXPECT_FALSE(t.read_only());
  EXPECT_FALSE(t.write_only());
  EXPECT_EQ(t.value_read(ObjectId(0)), ValueId(10));
  EXPECT_EQ(t.value_read(ObjectId(5)), std::nullopt);
  EXPECT_TRUE(t.writes_object(ObjectId(1)));
  EXPECT_EQ(t.value_written(ObjectId(1)), ValueId(20));
  EXPECT_FALSE(t.writes_object(ObjectId(0)));
}

TEST(History, WriterOfResolvesInitialAndWritten) {
  History h;
  h.set_initial(ObjectId(0), ValueId(100));
  h.add(make_tx(1, 1, {}, {{0, 5}}));
  auto w_init = h.writer_of(ValueId(100));
  ASSERT_TRUE(w_init.has_value());
  EXPECT_TRUE(w_init->is_init());
  auto w = h.writer_of(ValueId(5));
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->tx_index, 0u);
  EXPECT_FALSE(h.writer_of(ValueId(999)).has_value());
}

TEST(History, ClientOrderFollowsInvocationTime) {
  History h;
  h.add(make_tx(1, 7, {}, {{0, 1}}, /*invoke=*/10));
  h.add(make_tx(2, 7, {}, {{0, 2}}, /*invoke=*/5));
  h.add(make_tx(3, 8, {}, {{0, 3}}, /*invoke=*/1));
  auto order = h.client_order(ProcessId(7));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(h.at(order[0]).id, TxId(2));
  EXPECT_EQ(h.at(order[1]).id, TxId(1));
  EXPECT_EQ(h.clients().size(), 2u);
}

TEST(History, CompleteFiltersIncomplete) {
  History h;
  auto t = make_tx(1, 1, {}, {{0, 1}});
  t.completed = false;
  h.add(t);
  h.add(make_tx(2, 1, {}, {{0, 2}}));
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.complete().size(), 1u);
  EXPECT_EQ(h.complete().at(0).id, TxId(2));
}

TEST(History, MergeOrdersByInvocation) {
  History a, b;
  a.set_initial(ObjectId(0), ValueId(100));
  a.add(make_tx(1, 1, {}, {{0, 1}}, 20));
  b.set_initial(ObjectId(0), ValueId(100));
  b.add(make_tx(2, 2, {}, {{0, 2}}, 10));
  auto merged = merge_histories({a, b});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.at(0).id, TxId(2));
  EXPECT_EQ(merged.at(1).id, TxId(1));
  EXPECT_EQ(merged.initial_of(ObjectId(0)), ValueId(100));
}

TEST(History, MergeRejectsConflictingInitials) {
  History a, b;
  a.set_initial(ObjectId(0), ValueId(100));
  b.set_initial(ObjectId(0), ValueId(101));
  EXPECT_THROW(merge_histories({a, b}), discs::CheckFailure);
}

TEST(History, ObjectsUnion) {
  History h;
  h.set_initial(ObjectId(3), ValueId(1));
  h.add(make_tx(1, 1, {{0, 9}}, {{1, 2}}));
  auto objs = h.objects();
  EXPECT_EQ(objs.size(), 3u);
}

}  // namespace
}  // namespace discs::hist
