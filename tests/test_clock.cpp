#include <gtest/gtest.h>

#include "clock/clocks.h"
#include "util/check.h"

namespace discs::clk {
namespace {

TEST(Lamport, MonotoneAndObserves) {
  LamportClock c;
  EXPECT_EQ(c.tick(), 1u);
  EXPECT_EQ(c.tick(), 2u);
  EXPECT_EQ(c.observe(10), 11u);
  EXPECT_EQ(c.observe(3), 12u);  // never goes backwards
}

TEST(Vector, MergeAndCompare) {
  VectorClock a(3), b(3);
  a.advance(0);
  b.advance(1);
  EXPECT_TRUE(a.concurrent(b));
  VectorClock c = a;
  c.merge(b);
  EXPECT_TRUE(a.leq(c));
  EXPECT_TRUE(b.leq(c));
  EXPECT_TRUE(a.lt(c));
  EXPECT_FALSE(c.lt(a));
  EXPECT_EQ(c.at(0), 1u);
  EXPECT_EQ(c.at(1), 1u);
  EXPECT_EQ(c.at(2), 0u);
}

TEST(Hlc, TimestampOrdering) {
  HlcTimestamp a{1, 0}, b{1, 1}, c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (HlcTimestamp{1, 0}));
}

TEST(Hlc, TickAdvancesWithPhysicalTime) {
  HybridLogicalClock c;
  auto t1 = c.tick(5);
  EXPECT_EQ(t1, (HlcTimestamp{5, 0}));
  auto t2 = c.tick(5);  // same physical instant: logical grows
  EXPECT_EQ(t2, (HlcTimestamp{5, 1}));
  auto t3 = c.tick(9);
  EXPECT_EQ(t3, (HlcTimestamp{9, 0}));
}

TEST(Hlc, ObserveNeverRegresses) {
  HybridLogicalClock c;
  c.tick(5);
  auto t = c.observe({7, 3}, 6);
  EXPECT_GT(t, (HlcTimestamp{7, 3}));
  auto t2 = c.observe({2, 0}, 6);
  EXPECT_GT(t2, t);  // stale remote timestamps still move us forward
}

TEST(Hlc, CausalChainThroughMessages) {
  HybridLogicalClock sender, receiver;
  auto send_ts = sender.tick(10);
  auto recv_ts = receiver.observe(send_ts, 4);  // receiver's clock lags
  EXPECT_GT(recv_ts, send_ts);
}

TEST(JustBelow, EdgeCases) {
  EXPECT_EQ(just_below({3, 5}), (HlcTimestamp{3, 4}));
  auto below = just_below({3, 0});
  EXPECT_LT(below, (HlcTimestamp{3, 0}));
  EXPECT_EQ(below.physical, 2u);
  EXPECT_EQ(just_below({0, 0}), (HlcTimestamp{0, 0}));
}

TEST(TrueTime, IntervalContainsTrueTick) {
  for (std::int64_t skew : {-5, -1, 0, 3, 5}) {
    TrueTimeSim tt(5, skew);
    for (std::uint64_t tick : {0u, 10u, 1000u}) {
      auto iv = tt.now(tick);
      EXPECT_LE(iv.earliest, tick) << "skew " << skew << " tick " << tick;
      EXPECT_GE(iv.latest, tick) << "skew " << skew << " tick " << tick;
    }
  }
}

TEST(TrueTime, SkewMustRespectEpsilon) {
  EXPECT_THROW(TrueTimeSim(2, 5), discs::CheckFailure);
  EXPECT_NO_THROW(TrueTimeSim(5, 5));
}

TEST(TrueTime, ZeroEpsilonIsExact) {
  TrueTimeSim tt(0, 0);
  auto iv = tt.now(42);
  EXPECT_EQ(iv.earliest, 42u);
  EXPECT_EQ(iv.latest, 42u);
}

}  // namespace
}  // namespace discs::clk
