// Tests of the reusable adversarial scenarios, across the registry: each
// scenario must expose exactly the protocols it is designed to expose and
// leave the genuinely fast ones untouched.
#include <gtest/gtest.h>

#include "impossibility/scenarios.h"
#include "proto/registry.h"

namespace discs {
namespace {

using proto::ClusterConfig;

ClusterConfig paper_cluster() {
  ClusterConfig cfg;
  cfg.num_servers = 2;
  cfg.num_clients = 5;
  cfg.num_objects = 2;
  return cfg;
}

struct ChaseExpectation {
  std::string protocol;
  std::size_t min_rounds;
  std::size_t max_rounds;
};

class DependencyChase : public ::testing::TestWithParam<ChaseExpectation> {};

TEST_P(DependencyChase, RoundsMatchDesign) {
  const auto& e = GetParam();
  auto protocol = proto::protocol_by_name(e.protocol);
  auto audit = imposs::run_dependency_chase(*protocol, paper_cluster());
  ASSERT_TRUE(audit.completed) << e.protocol;
  EXPECT_GE(audit.rounds, e.min_rounds) << audit.summary();
  EXPECT_LE(audit.rounds, e.max_rounds) << audit.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Registry, DependencyChase,
    ::testing::Values(ChaseExpectation{"cops", 2, 2},
                      ChaseExpectation{"cops-snow", 1, 1},
                      ChaseExpectation{"eiger", 2, 3},
                      ChaseExpectation{"wren", 2, 2},
                      ChaseExpectation{"fatcops", 1, 1},
                      // RAMP's single writes carry no metadata: the chase
                      // does not trigger its repair round (its causal
                      // blind spot — see test_anomalies).
                      ChaseExpectation{"ramp", 1, 1}),
    [](const auto& info) {
      std::string n = info.param.protocol;
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(FractureChase, RampRepairRoundTriggered) {
  auto protocol = proto::protocol_by_name("ramp");
  auto audit = imposs::run_fracture_chase(*protocol, paper_cluster());
  ASSERT_TRUE(audit.completed);
  EXPECT_GE(audit.rounds, 2u) << audit.summary();
  EXPECT_FALSE(audit.fast()) << audit.summary();
}

TEST(FractureChase, EigerNotFastButNonblocking) {
  auto protocol = proto::protocol_by_name("eiger");
  auto audit = imposs::run_fracture_chase(*protocol, paper_cluster());
  ASSERT_TRUE(audit.completed);
  EXPECT_FALSE(audit.fast()) << audit.summary();
  EXPECT_TRUE(audit.nonblocking) << audit.summary();
}

TEST(FractureChase, FatCopsPaysValuesNotRounds) {
  auto protocol = proto::protocol_by_name("fatcops");
  auto audit = imposs::run_fracture_chase(*protocol, paper_cluster());
  ASSERT_TRUE(audit.completed);
  EXPECT_EQ(audit.rounds, 1u) << audit.summary();
  EXPECT_FALSE(audit.one_value) << audit.summary();
}

TEST(FractureChase, RejectedForSingleWriteProtocols) {
  auto protocol = proto::protocol_by_name("cops-snow");
  auto audit = imposs::run_fracture_chase(*protocol, paper_cluster());
  EXPECT_FALSE(audit.completed);
}

TEST(StabilizationLag, GentleRainBlocksWrenDoesNot) {
  auto gentlerain = proto::protocol_by_name("gentlerain");
  auto g = imposs::run_stabilization_lag(*gentlerain, paper_cluster());
  ASSERT_TRUE(g.completed);
  EXPECT_FALSE(g.nonblocking) << g.summary();

  auto wren = proto::protocol_by_name("wren");
  auto w = imposs::run_stabilization_lag(*wren, paper_cluster());
  ASSERT_TRUE(w.completed);
  EXPECT_TRUE(w.nonblocking) << w.summary();
}

TEST(StabilizationLag, OneRoundProtocolsUnaffected) {
  for (const std::string name : {"cops-snow", "naivefast"}) {
    auto protocol = proto::protocol_by_name(name);
    auto audit = imposs::run_stabilization_lag(*protocol, paper_cluster());
    ASSERT_TRUE(audit.completed) << name;
    EXPECT_TRUE(audit.fast()) << name << ": " << audit.summary();
  }
}

}  // namespace
}  // namespace discs
